// Package router is the cluster front end: it speaks the same JSON-lines
// wire protocol as a single-process streamd to its clients, but executes
// the plan across worker processes. The router owns exactly the state the
// in-process sharded plan keeps in its partition and merge boxes:
//
//   - A consistent-hash ring (internal/ring) maps each tuple's dedup key to
//     a logical worker slot; keyless tuples round-robin, exactly like the
//     in-process partitioner.
//   - The partition box itself runs here, so the window clock — which must
//     observe the full, unsharded arrival stream — emits the same close
//     sequence a single process would, broadcast to every worker as
//     explicit "close" punctuations.
//   - Each worker streams back "part" lines (per-group partial aggregates,
//     then the forwarded close, per window); the router buffers each port's
//     partials until its close arrives and feeds the same deterministic
//     merge the in-process plan uses, so client-facing alerts are
//     byte-identical to single-process execution.
//
// With Replicas >= 2 every routed tuple is dual-written to the owner's
// ring successor, which tails the raw lines (and all closes). When a worker
// dies, the router promotes the successor: it restores the slot's last
// installed checkpoint, replays the tail suffix, suppresses the window
// ordinals the router already merged, and takes over the slot — the
// subscriber stream continues without a missing or duplicated alert.
//
// Failover keeps the ring itself immutable within a run: routing stays
// stable in *logical slots* (key locality is what dedup correctness needs);
// a slot indirection table redirects a dead slot's traffic to the link that
// hosts it now.
package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/uop"
)

// Config parameterizes the router.
type Config struct {
	// Addr is the client-facing TCP listen address (":0" picks a port).
	Addr string
	// HTTPAddr, when non-empty, serves GET /statsz.
	HTTPAddr string
	// Workers are the worker addresses; index i is logical slot i.
	Workers []string
	// Replicas is the per-key copy count: 1 routes only to the owner, 2
	// dual-writes to the owner's ring successor (values above the worker
	// count are clamped). Only 2 is meaningful today — promotion reads one
	// successor tail.
	Replicas int
	// Vnodes is the ring's virtual-node count per weight unit (0 selects
	// ring.DefaultVnodes).
	Vnodes int
	// Weights are optional per-worker ring weights (len must match Workers
	// when non-nil; a weight w gives that worker w times the key share).
	Weights []int
	// Plan is the cluster split this router executes (uop.Query.Cluster()).
	Plan *uop.ClusterPlan
	// SubBuffer bounds each subscriber's pending-line buffer (default 4096).
	SubBuffer int
	// SendBuffer bounds each worker link's outbound line queue (default
	// 4096); a full queue blocks routing — backpressure, not loss.
	SendBuffer int
	// PingEvery is the worker liveness-probe cadence (0 disables pings;
	// /statsz then reports last_seen from traffic alone).
	PingEvery time.Duration
	// CkptEvery, when positive, drives periodic cluster checkpoints: every
	// interval the router snapshots each worker's slots and installs the
	// snapshots on the slots' replicas, bounding failover replay tails.
	CkptEvery time.Duration
	// Once stops the router after the first end-of-stream drain.
	Once bool
	// DialTimeout bounds the startup dial+handshake per worker, retried
	// with backoff (default 10s).
	DialTimeout time.Duration
	// Slots is the logical slot count (default len(Workers)). More slots
	// than workers gives a mid-stream joiner something to take over: the
	// key ring is built over slots and never changes, so routing — and the
	// alert byte stream — is independent of which host serves each slot.
	Slots int
	// Proto selects the router↔worker link encoding: "json" (the default)
	// keeps the original JSON-lines protocol, "bin" switches routed
	// tuples, close punctuations, and returning part lines to bwire
	// binary frames (see internal/server/bwire.go). Client connections
	// are unaffected: they negotiate per message by first byte either way.
	Proto string
	// Store, when non-nil, makes the router itself crash-safe: every
	// cluster checkpoint round also persists the router's own durable
	// state (window clock, partition sequence, head-merge progress, slot
	// snapshots, membership) as one atomic blob, and a restarted router
	// recovers the newest blob, rewinds its workers to the same cut, and
	// resumes the stream.
	Store server.Store
}

// link is one worker connection: its home slot (the slot it joined with;
// -1 for a mid-stream joiner), its outbound line queue, and its liveness.
type link struct {
	// idx is this link's index in Router.links (stable for the run).
	idx int
	// slot is the worker's home slot from its join handshake, -1 for a
	// slotless joiner. Which slots the link actually serves is routeSlot.
	slot int
	// member is this host's placement-ring id ("h<n>").
	member string
	addr   string
	// conn is nil for a stub link: a recovered-roster worker that could
	// not be re-dialed, registered only so failover can redirect its slots.
	conn net.Conn
	// sendq decouples routing from the socket; the sender goroutine drains
	// it. Closed (by failover) it fails blocked Puts fast.
	sendq *server.QueueOf[[]byte]
	// sentSchemas marks bwire schema ids already shipped down this link
	// (routeMu). A schema frame is prepended, atomically in one sendq
	// entry, to the first tuple frame referencing it — so a failover
	// retry on a fresh link re-sends the schema by construction.
	sentSchemas map[uint64]bool
	alive       atomic.Bool
	// lastSeen is the unix-milli stamp of the last line received.
	lastSeen   atomic.Int64
	version    atomic.Uint64
	routed     atomic.Uint64
	replicated atomic.Uint64
}

func (l *link) seen() { l.lastSeen.Store(time.Now().UnixMilli()) }

// repoch is one router epoch: a fresh partition (window clock + routing), a
// fresh head graph (merge + post stages), and the per-slot merge-feeding
// state.
type repoch struct {
	n    int
	part stream.Operator
	head *uop.Compiled
	// ended flips when the client's "end" has been processed (the final
	// closes are on the wire); routing then waits for the next epoch.
	ended  atomic.Bool
	alerts atomic.Uint64
	// routedSeq counts client tuples accepted this epoch — the resume
	// index a subscriber ack reports, so a reconnecting load generator
	// knows which suffix of its input a recovered router still needs.
	routedSeq atomic.Uint64
	// closeLog records every window-close punctuation the partition clock
	// emitted this epoch (routeMu). A degraded slot's port is fed
	// synthesized closes from this log so the merge keeps flowing.
	closeLog []closePt
	// pending buffers each port's partials until the port's close arrives,
	// then feeds partials+close to the merge atomically — the envelope
	// discipline failover depends on: a half-shipped window from a dead
	// worker is discarded wholesale and re-emitted by its replica.
	pending [][]*stream.Tuple
	// closes counts closes fed to the merge per port: the suppression floor
	// a promotion sends.
	closes []uint64
	// doneNeed tracks links whose end-of-stream "done" is still pending.
	doneNeed map[int]bool
	// pendingPromotes counts promotions issued during the drain whose
	// "promoted" ack is still pending; the epoch cannot finish under one.
	pendingPromotes int
	finished        bool
}

// closePt is one logged window-close punctuation: the window end and the
// clock's close sequence number.
type closePt struct {
	t   stream.Time
	seq uint64
}

// Router is the cluster front end.
type Router struct {
	cfg    Config
	ring   *ring.Ring
	slotOf map[string]int // ring member id -> slot
	ln     net.Listener
	httpLn net.Listener

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	// done closes after the Once drain (or shutdown).
	done     chan struct{}
	doneOnce sync.Once

	hub   *server.Hub
	links []*link

	// nslots is the logical slot count (fixed for the run: the key ring's
	// member count, the partition width, the head's port count).
	nslots int
	// weights are the per-slot key-ring weights (all 1 unless configured);
	// persisted so a recovered router rebuilds the identical key ring.
	weights []int

	// routeMu orders everything that routes: the partition box, the slot
	// indirection tables, and sendq enqueues (held across blocking Puts —
	// backpressure stalls routing, deliberately). Lock order: routeMu
	// strictly before headMu.
	routeMu sync.Mutex
	// paused stalls routing and end-of-stream during a quiesced cut
	// (checkpoint round, membership change); routeTuple/endStream wait it
	// out instead of erroring.
	paused bool
	// routeSlot maps logical slot -> link index currently serving it
	// (slot % initial workers until a failover or migration redirects it;
	// -1 when unservable).
	routeSlot []int
	// replicaSlot maps logical slot -> link index tailing its dual writes
	// (-1 without replication or after the replica died).
	replicaSlot []int
	// place is the host placement ring ("h<n>" members, one per live
	// worker). It decides which slots move on join/leave — ring.Rebalance
	// diffs against it — while routeSlot stays the serving truth.
	place *ring.Ring
	// memberLink maps placement member id -> link index.
	memberLink map[string]int
	// hostSeq numbers placement members across the router's lifetime.
	hostSeq int
	// slotSnaps holds each slot's snapshot from the last completed
	// checkpoint round — what migrations install and recovery resets to.
	slotSnaps []roundSnap
	// lastMoved is the slot set the last rebalance migrated (statsz).
	lastMoved []int

	// placeVer is the placement membership version: initial worker count,
	// +1 per join, leave, or death. Reported by pong, /statsz, and the
	// join handshake.
	placeVer atomic.Uint64

	// memberMu serializes membership changes (join/leave) end to end.
	memberMu sync.Mutex

	// headMu orders merge feeding and drain state.
	headMu sync.Mutex
	ep     *repoch
	epochs int

	// bin is the resolved Config.Proto: worker links speak bwire frames.
	bin bool
	// benc interns tuple schemas for binary links (routeMu); schema ids
	// are router-global, each link tracks which ones it has seen.
	benc *server.BwEncoder

	mu       sync.Mutex
	conns    map[*server.ConnTrack]struct{}
	shutdown bool

	start      time.Time
	ingested   atomic.Uint64
	ingestErrs atomic.Uint64
	encodeErrs atomic.Uint64
	alerts     atomic.Uint64
	failovers  atomic.Uint64
	degraded   atomic.Bool
	workerErrs atomic.Uint64
	// crashed marks a simulated kill -9 (Crash): no further state is
	// persisted and the on-disk blob survives for recovery.
	crashed atomic.Bool
	// recovered is the epoch resumed from a durable blob at startup
	// (-1: fresh start).
	recovered int
	// movedRanges / rebalances summarize the last ring.Rebalance diff.
	movedRanges atomic.Uint64
	rebalances  atomic.Uint64

	// ckptMu serializes cluster checkpoint rounds.
	ckptMu   sync.Mutex
	ckptSeq  atomic.Uint64
	round    atomic.Pointer[ckptRound]
	ckptN    atomic.Uint64
	ckptErrs atomic.Uint64
	// lastSnap is, per slot, the checkpoint id last confirmed installed on
	// the slot's replica (what a promote names).
	lastSnap []atomic.Uint64
}

// ckptRound tracks one in-flight cluster checkpoint.
type ckptRound struct {
	id uint64
	mu sync.Mutex
	// ackNeed / snapNeed track slots awaiting ckpt_ack / snap_ack.
	ackNeed  map[int]bool
	snapNeed map[int]bool
	// snaps retains each acked slot's snapshot for the round's commit:
	// replica re-acquisition and the router's own persisted state both need
	// the blobs, not just the acks.
	snaps  map[int]roundSnap
	err    error
	done   chan struct{}
	closed bool
}

func (cr *ckptRound) finishLocked() {
	if !cr.closed && len(cr.ackNeed) == 0 && len(cr.snapNeed) == 0 {
		cr.closed = true
		close(cr.done)
	}
}

// memberID names slot i on the ring. Slot-stable ids (not addresses) keep
// the key->slot mapping identical across runs with the same geometry, which
// the equivalence tests pin.
func memberID(i int) string { return "w" + strconv.Itoa(i) }

// hostID names placement member n ("h0", "h1", ...). Host ids are minted
// once per admitted worker and never reused, so ring.Rebalance diffs across
// membership changes are well defined.
func hostID(n int) string { return "h" + strconv.Itoa(n) }

// New dials and joins every worker, binds the client listener, and starts
// routing. It fails fast if any worker cannot be reached within the dial
// budget. With Config.Store set and a recovered blob on disk, the roster,
// slot tables, and stream state come from the blob — a mid-stream restart —
// and each reachable worker is rewound to the blob's checkpoint cut.
func New(cfg Config) (*Router, error) {
	if cfg.Plan == nil {
		return nil, errors.New("router: Config.Plan is required")
	}
	if len(cfg.Workers) == 0 {
		return nil, errors.New("router: Config.Workers is required")
	}
	if cfg.Addr == "" {
		return nil, errors.New("router: Config.Addr is required")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = len(cfg.Workers)
	}
	if cfg.Slots < len(cfg.Workers) {
		return nil, fmt.Errorf("router: %d slots for %d workers (need at least one slot per worker)", cfg.Slots, len(cfg.Workers))
	}
	if cfg.Weights != nil && len(cfg.Weights) != cfg.Slots {
		return nil, fmt.Errorf("router: %d weights for %d workers", len(cfg.Weights), len(cfg.Workers))
	}
	if cfg.SubBuffer <= 0 {
		cfg.SubBuffer = 4096
	}
	if cfg.SendBuffer <= 0 {
		cfg.SendBuffer = 4096
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > len(cfg.Workers) {
		cfg.Replicas = len(cfg.Workers)
	}
	switch cfg.Proto {
	case "", "json", "bin":
	default:
		return nil, fmt.Errorf("router: unknown proto %q (want json or bin)", cfg.Proto)
	}

	var blob *routerState
	if cfg.Store != nil {
		if b, err := loadNewestState(cfg.Store); err != nil {
			return nil, fmt.Errorf("router: recover: %w", err)
		} else {
			blob = b
		}
	}

	s := cfg.Slots
	weights := make([]int, s)
	for i := range weights {
		weights[i] = 1
		if cfg.Weights != nil {
			weights[i] = cfg.Weights[i]
		}
	}
	if blob != nil {
		s = blob.nslots
		weights = blob.weights
	}
	rg := ring.New(cfg.Vnodes)
	slotOf := make(map[string]int, s)
	for i := 0; i < s; i++ {
		rg.Add(ring.Member{ID: memberID(i), Weight: weights[i]})
		slotOf[memberID(i)] = i
	}

	r := &Router{
		cfg:         cfg,
		ring:        rg,
		slotOf:      slotOf,
		nslots:      s,
		weights:     weights,
		done:        make(chan struct{}),
		hub:         server.NewHub(),
		routeSlot:   make([]int, s),
		replicaSlot: make([]int, s),
		lastSnap:    make([]atomic.Uint64, s),
		slotSnaps:   make([]roundSnap, s),
		place:       ring.New(cfg.Vnodes),
		memberLink:  map[string]int{},
		conns:       map[*server.ConnTrack]struct{}{},
		start:       time.Now(),
		recovered:   -1,
		bin:         cfg.Proto == "bin",
		benc:        server.NewBwEncoder(),
	}
	if blob != nil {
		r.recovered = blob.n
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())

	var stubs []*link
	if blob == nil {
		w := len(cfg.Workers)
		for i := 0; i < s; i++ {
			r.routeSlot[i] = i % w
			r.replicaSlot[i] = -1
			if cfg.Replicas >= 2 {
				if succ, ok := rg.Successor(memberID(i)); ok {
					if rep := slotOf[succ] % w; rep != r.routeSlot[i] {
						r.replicaSlot[i] = rep
					}
				}
			}
		}
		for i := 0; i < w; i++ {
			r.place.Add(ring.Member{ID: hostID(i)})
			r.memberLink[hostID(i)] = i
		}
		r.hostSeq = w
		r.placeVer.Store(r.place.Version())
		// Dial and handshake every worker before accepting clients: join
		// (home slot + geometry), then subscribe to its part stream. With a
		// Store, a reset-to-empty rides between the two so a worker orphaned
		// by a previous router run cannot leak mid-window state into this one.
		for i, addr := range cfg.Workers {
			var reset *server.ResetBlob
			if cfg.Store != nil {
				reset = &server.ResetBlob{Own: &server.SlotBlob{Slot: i}}
			}
			l, err := r.dialWorker(i, addr, reset)
			if err != nil {
				r.teardownLinks()
				return nil, err
			}
			l.idx = i
			l.member = hostID(i)
			r.links = append(r.links, l)
		}
	} else {
		var err error
		stubs, err = r.recoverLinks(blob)
		if err != nil {
			r.teardownLinks()
			return nil, err
		}
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		r.teardownLinks()
		return nil, fmt.Errorf("router: listen %s: %w", cfg.Addr, err)
	}
	r.ln = ln
	if cfg.HTTPAddr != "" {
		httpLn, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			ln.Close()
			r.teardownLinks()
			return nil, fmt.Errorf("router: listen %s: %w", cfg.HTTPAddr, err)
		}
		r.httpLn = httpLn
		mux := http.NewServeMux()
		mux.HandleFunc("/statsz", r.handleStatsz)
		srv := &http.Server{Handler: mux}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			srv.Serve(httpLn)
		}()
	}

	r.headMu.Lock()
	r.newEpochLocked()
	if blob != nil {
		err = r.restoreEpochLocked(blob)
	}
	r.headMu.Unlock()
	if err != nil {
		ln.Close()
		if r.httpLn != nil {
			r.httpLn.Close()
		}
		r.teardownLinks()
		return nil, fmt.Errorf("router: recover: %w", err)
	}
	if blob == nil {
		// Slots beyond the worker count start as hosted instances on their
		// home-modulo worker: an aligned promote (floor 0) enqueued before
		// any tuple spawns them fresh.
		r.routeMu.Lock()
		for i := len(cfg.Workers); i < s; i++ {
			r.migrateSlotLocked(r.epoch(), i, r.routeSlot[i], 0, roundSnap{})
		}
		r.routeMu.Unlock()
	}
	// A recovered-roster worker that could not be re-dialed fails over now
	// that the epoch (and its merge floors) is restored.
	for _, l := range stubs {
		r.failLink(l)
	}

	for _, l := range r.links {
		r.startLink(l)
	}
	if cfg.PingEvery > 0 {
		r.wg.Add(1)
		go r.pingLoop()
	}
	if cfg.CkptEvery > 0 {
		r.wg.Add(1)
		go r.ckptLoop()
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// startLink spawns the sender/reader pair for a dialed link (no-op for
// stubs and links already failed).
func (r *Router) startLink(l *link) {
	if l.conn == nil {
		return
	}
	r.wg.Add(2)
	go r.linkSender(l)
	go r.linkReader(l)
}

// Addr returns the client listener's address.
func (r *Router) Addr() net.Addr { return r.ln.Addr() }

// HTTPAddr returns the /statsz listener's address, or nil.
func (r *Router) HTTPAddr() net.Addr {
	if r.httpLn == nil {
		return nil
	}
	return r.httpLn.Addr()
}

// RecoveredEpoch reports the epoch this router resumed from a durable blob
// at startup, or ok=false for a fresh start.
func (r *Router) RecoveredEpoch() (n int, ok bool) { return r.recovered, r.recovered >= 0 }

// Done closes after the first end-of-stream drain with Config.Once.
func (r *Router) Done() <-chan struct{} { return r.done }

// Close shuts the router down: client connections drain their queued
// lines, worker links close.
func (r *Router) Close() error {
	r.cancel()
	r.ln.Close()
	if r.httpLn != nil {
		r.httpLn.Close()
	}
	r.hub.CloseAll()
	r.hub.WaitPumps()
	r.mu.Lock()
	r.shutdown = true
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
	r.routeMu.Lock()
	links := append([]*link(nil), r.links...)
	r.routeMu.Unlock()
	for _, l := range links {
		l.sendq.Close()
		if l.conn != nil {
			l.conn.Close()
		}
	}
	r.wg.Wait()
	r.doneOnce.Do(func() { close(r.done) })
	return nil
}

// Crash simulates abrupt router termination (kill -9) for recovery tests:
// no further state is persisted and the on-disk blob survives, so a fresh
// Router over the same Store resumes from the last completed round.
func (r *Router) Crash() {
	r.crashed.Store(true)
	r.Close()
}

func (r *Router) teardownLinks() {
	for _, l := range r.links {
		l.sendq.Close()
		if l.conn != nil {
			l.conn.Close()
		}
	}
}

// dialWorker connects, joins, optionally resets, and subscribes one worker
// with retry/backoff inside the dial budget — workers started in parallel
// with the router may still be binding. A non-nil reset rides between join
// and sub, rewinding the worker to a checkpoint cut (or to empty) before
// any of its output can reach this router.
func (r *Router) dialWorker(home int, addr string, reset *server.ResetBlob) (*link, error) {
	deadline := time.Now().Add(r.cfg.DialTimeout)
	delay := 50 * time.Millisecond
	var lastErr error
	for {
		c, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			l, herr := r.handshake(home, addr, c, reset)
			if herr == nil {
				return l, nil
			}
			c.Close()
			err = herr
		}
		lastErr = err
		if time.Now().Add(delay).After(deadline) {
			return nil, fmt.Errorf("router: worker %d (%s): %w", home, addr, lastErr)
		}
		time.Sleep(delay)
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
}

// handshake performs join [+ reset] + sub synchronously on a fresh worker
// connection.
func (r *Router) handshake(home int, addr string, c net.Conn, reset *server.ResetBlob) (*link, error) {
	bw := bufio.NewWriter(c)
	br := bufio.NewReaderSize(c, 64*1024)
	expect := func(m server.Msg, budget time.Duration) error {
		line, err := server.EncodeLine(m)
		if err != nil {
			return err
		}
		c.SetDeadline(time.Now().Add(budget))
		defer c.SetDeadline(time.Time{})
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		reply, err := br.ReadBytes('\n')
		if err != nil {
			return err
		}
		var rm server.Msg
		if err := json.Unmarshal(reply, &rm); err != nil {
			return err
		}
		if rm.Kind != server.KindOK {
			return fmt.Errorf("%s handshake: %s", m.Kind, rm.Error)
		}
		return nil
	}
	if r.bin {
		// Announce the binary protocol before join: the worker marks the
		// connection binary on the frame's arrival, so by subscribe time
		// it knows to answer part traffic in frames rather than lines.
		if _, err := bw.Write(server.EncodeBwHello()); err != nil {
			return nil, err
		}
	}
	s := home
	join := server.Msg{
		Kind:     server.KindJoin,
		Shard:    &s,
		Workers:  r.nslots,
		Replicas: r.cfg.Replicas,
		Version:  r.placeVer.Load(),
	}
	if err := expect(join, 5*time.Second); err != nil {
		return nil, err
	}
	if reset != nil {
		// The worker acks only once the rewound epoch is live, which can
		// wait out an epoch turnover — give it the worker's own 15s budget.
		if err := expect(server.Msg{Kind: server.KindReset, Data: reset.Encode()}, 20*time.Second); err != nil {
			return nil, err
		}
	}
	if err := expect(server.Msg{Kind: server.KindSub}, 5*time.Second); err != nil {
		return nil, err
	}
	l := &link{
		slot:        home,
		addr:        addr,
		conn:        c,
		sendq:       server.NewQueueOf[[]byte](r.cfg.SendBuffer, server.Block),
		sentSchemas: map[uint64]bool{},
	}
	l.alive.Store(true)
	l.seen()
	return l, nil
}

// linkSender drains a worker's outbound queue onto its socket.
func (r *Router) linkSender(l *link) {
	defer r.wg.Done()
	bw := bufio.NewWriter(l.conn)
	for line := range l.sendq.Tuples() {
		l.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := bw.Write(line); err != nil {
			r.failLink(l)
			return
		}
		if l.sendq.Depth() == 0 {
			if err := bw.Flush(); err != nil {
				r.failLink(l)
				return
			}
		}
	}
	bw.Flush()
}

// linkReader consumes a worker's reply stream: part lines/frames feed the
// merge, control acks resolve checkpoint/promotion state. Binary links
// return parts as BwPart frames; everything else stays JSON on both
// protocols, so one mixed reader serves both.
func (r *Router) linkReader(l *link) {
	defer r.wg.Done()
	// ckpt_ack lines carry whole plan checkpoints (base64).
	wr := server.NewWireReader(l.conn, 1<<26)
	for {
		line, fr, err := wr.Next()
		if err != nil {
			break
		}
		if line == nil {
			l.seen()
			if fr.Kind != server.BwPart {
				r.workerErrs.Add(1)
				continue
			}
			slot, data, derr := server.DecodeBwPart(fr.Payload)
			if derr != nil {
				r.workerErrs.Add(1)
				continue
			}
			r.feedPart(l, slot, data)
			continue
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var m server.Msg
		if err := json.Unmarshal(line, &m); err != nil {
			r.workerErrs.Add(1)
			continue
		}
		l.seen()
		switch m.Kind {
		case server.KindPart:
			if m.Shard == nil {
				r.workerErrs.Add(1)
				continue
			}
			r.feedPart(l, *m.Shard, m.Data)
		case server.KindDone:
			r.onWorkerDone(l)
		case server.KindPong:
			l.version.Store(m.Version)
		case server.KindCkptAck:
			r.onCkptAck(l, m)
		case server.KindSnapAck:
			r.onSnapAck(m)
		case server.KindPromoted:
			r.onPromoted(m)
		case server.KindLeave:
			// Graceful departure: migrate the worker's slots away on the
			// next quiesced cut. Async — the removal round waits on acks
			// this reader must keep consuming.
			go r.removeWorker(l)
		case server.KindOK:
			// late ack (end); nothing to resolve
		case server.KindErr:
			r.workerErrs.Add(1)
		}
	}
	r.failLink(l)
}

// feedPart buffers a worker's partials per port and releases each window to
// the merge atomically when the port's close arrives. Everything below
// headMu: PushTuple runs the merge (and post stages, and alert emission)
// synchronously. data is the stream.EncodeWireTuple blob, however it
// arrived (base64 in a JSON part line, raw in a BwPart frame).
func (r *Router) feedPart(l *link, slot int, data []byte) {
	if len(data) == 0 {
		r.workerErrs.Add(1)
		return
	}
	t, err := stream.DecodeWireTuple(data)
	if err != nil {
		r.workerErrs.Add(1)
		return
	}
	r.headMu.Lock()
	defer r.headMu.Unlock()
	ep := r.ep
	if ep == nil || ep.finished || slot < 0 || slot >= len(ep.pending) {
		return
	}
	if !l.alive.Load() {
		// A straggling part from a link that failover already discarded:
		// the slot's replica re-emits this window in full.
		return
	}
	if _, isClose := stream.WindowCloseOf(t); isClose {
		port := uop.ClusterPort(slot)
		for _, pt := range ep.pending[slot] {
			ep.head.PushTuple(port, pt)
		}
		ep.pending[slot] = nil
		ep.head.PushTuple(port, t)
		ep.closes[slot]++
		return
	}
	ep.pending[slot] = append(ep.pending[slot], t)
}

// emitClientAlert mirrors the single-process server's alert path: encode
// once, broadcast to every subscriber.
func (r *Router) emitClientAlert(ep *repoch, t *stream.Tuple) {
	m, err := server.AlertMsg(t)
	if err != nil {
		r.encodeErrs.Add(1)
		return
	}
	line, err := server.EncodeLine(m)
	if err != nil {
		r.encodeErrs.Add(1)
		return
	}
	ep.alerts.Add(1)
	r.alerts.Add(1)
	r.hub.Broadcast(line)
}

// newEpochLocked (headMu held) builds a fresh partition + head graph. The
// slot indirection tables persist — a failed-over slot stays on its host.
func (r *Router) newEpochLocked() {
	w := r.nslots
	spec := r.cfg.Plan.Window
	key := r.cfg.Plan.Key
	ep := &repoch{
		n: r.epochs,
		part: stream.NewPartition("route", w, stream.PartitionSpec{
			Clock: &spec,
			Route: func(ct *stream.Tuple) (int, bool) {
				u := core.Unwrap(ct)
				if key == "" || !u.HasKey(key) {
					return 0, false
				}
				owner, ok := r.ring.Owner(u.Key(key))
				if !ok {
					return 0, false
				}
				return r.slotOf[owner], true
			},
		}),
		head:     r.cfg.Plan.CompileHead(w),
		pending:  make([][]*stream.Tuple, w),
		closes:   make([]uint64, w),
		doneNeed: map[int]bool{},
	}
	ep.head.OnResult(func(t *stream.Tuple) { r.emitClientAlert(ep, t) })
	r.epochs++
	r.ep = ep
}

// epoch returns the current router epoch.
func (r *Router) epoch() *repoch {
	r.headMu.Lock()
	defer r.headMu.Unlock()
	return r.ep
}

// sendLine enqueues a pre-encoded line on the link serving logical slot,
// failing the link over (and retrying on the new host) if its queue is
// closed. routeMu must be held. Reports whether the line was accepted.
func (r *Router) sendLine(slot int, line []byte, replica bool) bool {
	for {
		li := r.routeSlot[slot]
		if li < 0 {
			r.degraded.Store(true)
			return false
		}
		l := r.links[li]
		err := l.sendq.Put(r.ctx, line)
		if err == nil {
			if replica {
				l.replicated.Add(1)
			} else {
				l.routed.Add(1)
			}
			return true
		}
		if r.ctx.Err() != nil {
			return false
		}
		// Queue closed: the link died under us; redirect and retry.
		r.failLinkLocked(l)
	}
}

// putFrame enqueues one bwire frame on a link, prepending the schema
// frame — in the same sendq entry, so the pair is atomic across failover —
// the first time this link references the schema. routeMu must be held.
func (r *Router) putFrame(l *link, sc *server.BwSchema, frame []byte) error {
	if !l.sentSchemas[sc.ID] {
		pair := make([]byte, 0, len(sc.Frame())+len(frame))
		pair = append(append(pair, sc.Frame()...), frame...)
		if err := l.sendq.Put(r.ctx, pair); err != nil {
			return err
		}
		l.sentSchemas[sc.ID] = true
		return nil
	}
	return l.sendq.Put(r.ctx, frame)
}

// sendFrame is sendLine for a binary tuple frame: enqueue on the link
// serving the slot, failing over and retrying like sendLine. routeMu held.
func (r *Router) sendFrame(slot int, sc *server.BwSchema, frame []byte) bool {
	for {
		li := r.routeSlot[slot]
		if li < 0 {
			r.degraded.Store(true)
			return false
		}
		l := r.links[li]
		if err := r.putFrame(l, sc, frame); err == nil {
			l.routed.Add(1)
			return true
		}
		if r.ctx.Err() != nil {
			return false
		}
		r.failLinkLocked(l)
	}
}

// emitRouted handles one partition output under routeMu: closes broadcast
// to every live link (and through the slot indirection, so hosted slots
// hear them too — sendLine dedupes by link? no: closes go per *link*, once).
func (r *Router) emitRouted(ep *repoch, m server.Msg, out *stream.Tuple) {
	if end, ok := stream.WindowCloseOf(out); ok {
		seq, _ := stream.CloseSeq(out)
		var line []byte
		if r.bin {
			line = server.EncodeBwClose(r.cfg.Plan.Source, int64(end), seq)
		} else {
			var err error
			line, err = server.EncodeLine(server.Msg{
				Kind:   server.KindClose,
				Source: r.cfg.Plan.Source,
				T:      int64(end),
				Seq:    seq,
			})
			if err != nil {
				r.encodeErrs.Add(1)
				return
			}
		}
		ep.closeLog = append(ep.closeLog, closePt{t: end, seq: seq})
		r.broadcastToLinks(line)
		// Degraded slots have no worker to forward this close back; feed
		// their merge ports a synthesized one so surviving slots' windows
		// keep completing (their data for this window is lost — documented).
		for slot, li := range r.routeSlot {
			if li < 0 {
				r.synthClose(ep, slot, end, seq)
			}
		}
		return
	}
	slot, ok := out.RouteShard()
	if !ok {
		r.encodeErrs.Add(1)
		return
	}
	om := m
	om.Seq = out.Seq
	om.Shard = &slot
	if r.bin {
		// Binary link: no per-tuple JSON marshal, no base64 — one frame
		// to the owner and (schema permitting) one replica frame, each a
		// fixed-field body against the interned schema.
		sc, _, err := r.benc.Intern(&om)
		if err != nil {
			r.encodeErrs.Add(1)
			return
		}
		if !r.sendFrame(slot, sc, server.EncodeTupleFrame(sc, &om, slot, false)) {
			return
		}
		rep := r.replicaSlot[slot]
		if rep < 0 || rep == r.routeSlot[slot] || !r.links[rep].alive.Load() {
			return
		}
		if r.putFrame(r.links[rep], sc, server.EncodeTupleFrame(sc, &om, slot, true)) == nil {
			r.links[rep].replicated.Add(1)
		}
		return
	}
	line, err := server.EncodeLine(om)
	if err != nil {
		r.encodeErrs.Add(1)
		return
	}
	if !r.sendLine(slot, line, false) {
		return
	}
	rep := r.replicaSlot[slot]
	if rep < 0 || rep == r.routeSlot[slot] || !r.links[rep].alive.Load() {
		return
	}
	om.Replica = true
	rline, err := server.EncodeLine(om)
	if err != nil {
		r.encodeErrs.Add(1)
		return
	}
	r.links[rep].sendq.Put(r.ctx, rline)
	r.links[rep].replicated.Add(1)
}

// synthClose feeds one synthesized window-close to a degraded slot's merge
// port (routeMu held; takes headMu). Half-shipped partials for the slot were
// discarded at failover; anything left is dropped to keep the envelope
// discipline — a degraded window carries no data.
func (r *Router) synthClose(ep *repoch, slot int, end stream.Time, seq uint64) {
	r.headMu.Lock()
	defer r.headMu.Unlock()
	if ep.finished || slot < 0 || slot >= len(ep.pending) {
		return
	}
	ep.pending[slot] = nil
	ep.head.PushTuple(uop.ClusterPort(slot), stream.NewWindowClose(end, seq))
	ep.closes[slot]++
}

// broadcastToLinks enqueues one line on every live link (routeMu held).
func (r *Router) broadcastToLinks(line []byte) {
	for _, l := range r.links {
		if !l.alive.Load() {
			continue
		}
		if err := l.sendq.Put(r.ctx, line); err != nil && r.ctx.Err() == nil {
			r.failLinkLocked(l)
		}
	}
}

// routeTuple parses and routes one client tuple line, waiting out the
// between-epochs gap like the single-process server does.
func (r *Router) routeTuple(m server.Msg) error {
	source := m.Source
	if source == "" {
		source = "locations"
	}
	if source != r.cfg.Plan.Source {
		return fmt.Errorf("unknown source %q", source)
	}
	u, err := server.ParseTuple(m)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.routeMu.Lock()
		if r.paused {
			// A quiesced cut (checkpoint round or membership change) is in
			// flight; wait it out without burning the retry budget.
			r.routeMu.Unlock()
			deadline = time.Now().Add(5 * time.Second)
		} else {
			ep := r.epoch()
			if ep != nil && !ep.ended.Load() {
				ep.part.Process(0, core.Wrap(u), func(out *stream.Tuple) {
					r.emitRouted(ep, m, out)
				})
				ep.routedSeq.Add(1)
				r.routeMu.Unlock()
				return nil
			}
			r.routeMu.Unlock()
		}
		if r.ctx.Err() != nil {
			return errors.New("router shutting down")
		}
		select {
		case <-r.done:
			return errors.New("router stopped; no further streams accepted")
		default:
		}
		if time.Now().After(deadline) {
			return errors.New("stream draining; retry")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// endStream processes a client "end": flush the partition (the final window
// closes reach every worker ahead of the end line, in queue order), then
// ask every live worker to drain.
func (r *Router) endStream() error {
	// Wait out any quiesced cut first: the final closes must not race a
	// checkpoint or migration pause.
	deadline := time.Now().Add(30 * time.Second)
	for {
		r.routeMu.Lock()
		if !r.paused {
			break
		}
		r.routeMu.Unlock()
		if r.ctx.Err() != nil {
			return errors.New("router shutting down")
		}
		if time.Now().After(deadline) {
			return errors.New("router busy (checkpoint in flight); retry")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ep := r.epoch()
	if ep == nil || ep.ended.Swap(true) {
		r.routeMu.Unlock()
		return errors.New("no stream to end")
	}
	ep.part.Flush(func(out *stream.Tuple) {
		r.emitRouted(ep, server.Msg{Kind: server.KindTuple}, out)
	})
	endLine, err := server.EncodeLine(server.Msg{Kind: server.KindEnd})
	if err != nil {
		r.routeMu.Unlock()
		return err
	}
	var need []int
	for i, l := range r.links {
		if l.alive.Load() {
			need = append(need, i)
		}
	}
	r.broadcastToLinks(endLine)
	r.headMu.Lock()
	for _, i := range need {
		if r.links[i].alive.Load() {
			ep.doneNeed[i] = true
		}
	}
	r.checkFinishLocked(ep)
	r.headMu.Unlock()
	r.routeMu.Unlock()
	return nil
}

// onWorkerDone records one worker's end-of-stream drain.
func (r *Router) onWorkerDone(l *link) {
	r.headMu.Lock()
	defer r.headMu.Unlock()
	ep := r.ep
	if ep == nil || !ep.ended.Load() {
		return
	}
	delete(ep.doneNeed, l.idx)
	r.checkFinishLocked(ep)
}

// onPromoted resolves a drain-time promotion ack.
func (r *Router) onPromoted(m server.Msg) {
	r.headMu.Lock()
	defer r.headMu.Unlock()
	ep := r.ep
	if ep == nil || ep.pendingPromotes == 0 {
		return
	}
	ep.pendingPromotes--
	r.checkFinishLocked(ep)
}

// checkFinishLocked (headMu held) completes the epoch once the stream has
// ended, every live worker has drained, and no promotion is in flight: the
// client-facing "done" goes out, and the next epoch (or shutdown, with
// Once) begins.
func (r *Router) checkFinishLocked(ep *repoch) {
	if ep.finished || !ep.ended.Load() || len(ep.doneNeed) > 0 || ep.pendingPromotes > 0 {
		return
	}
	ep.finished = true
	// Defensive flush: with every close merged per port the graph is
	// already drained; Close also releases its goroutines' state.
	ep.head.Graph.Close()
	line, err := server.EncodeLine(server.Msg{Kind: server.KindDone, Alerts: server.AlertsField(ep.alerts.Load())})
	if err == nil {
		r.hub.BroadcastControl(line)
	}
	// A cleanly finished stream deletes its durable blob — recovery must
	// never resurrect a drained epoch.
	if r.cfg.Store != nil && !r.crashed.Load() {
		n := ep.n
		go r.cfg.Store.Delete(n)
	}
	if r.cfg.Once {
		r.doneOnce.Do(func() { close(r.done) })
		return
	}
	r.newEpochLocked()
}

// failLink is the unlocked entry to failover (reader/sender error paths).
func (r *Router) failLink(l *link) {
	if r.ctx.Err() != nil {
		return
	}
	r.routeMu.Lock()
	r.failLinkLocked(l)
	r.routeMu.Unlock()
}

// failLinkLocked (routeMu held) fails a worker link over: every logical
// slot it served is redirected to the slot's replica, which is promoted
// with the router's merge progress (closes[slot]) as the suppression floor
// and the last installed snapshot as the restore point. Idempotent.
func (r *Router) failLinkLocked(l *link) {
	if !l.alive.CompareAndSwap(true, false) {
		return
	}
	l.sendq.Close()
	if l.conn != nil {
		l.conn.Close()
	}
	r.failovers.Add(1)
	// Death is a membership change: the host leaves the placement ring, so
	// later join/leave diffs see the real topology.
	if l.member != "" {
		r.place.Remove(l.member)
		delete(r.memberLink, l.member)
		r.placeVer.Store(r.placeVer.Load() + 1)
	}
	ep := r.epoch()
	for slot, li := range r.routeSlot {
		if li != l.idx {
			continue
		}
		rep := r.replicaSlot[slot]
		if rep >= 0 && (rep == li || !r.links[rep].alive.Load()) {
			rep = -1
		}
		if rep < 0 {
			// No live replica: the slot's keys are unservable until a new
			// worker joins. Catch its merge port up to the clock (the dead
			// worker's unmerged closes never arrive), then keep it fed by
			// the synthesized-close path.
			r.routeSlot[slot] = -1
			r.replicaSlot[slot] = -1
			r.lastSnap[slot].Store(0)
			r.degraded.Store(true)
			if ep != nil {
				r.headMu.Lock()
				ep.pending[slot] = nil
				from := ep.closes[slot]
				log := ep.closeLog
				r.headMu.Unlock()
				for _, cp := range log[min(int(from), len(log)):] {
					r.synthClose(ep, slot, cp.t, cp.seq)
				}
			}
			continue
		}
		var closes uint64
		if ep != nil {
			r.headMu.Lock()
			closes = ep.closes[slot]
			ep.pending[slot] = nil // half-shipped window: replica re-emits it
			r.headMu.Unlock()
		}
		s := slot
		promote := server.Msg{
			Kind:   server.KindPromote,
			Shard:  &s,
			Closes: closes,
			Ckpt:   r.lastSnap[slot].Load(),
		}
		line, err := server.EncodeLine(promote)
		if err != nil {
			r.encodeErrs.Add(1)
			continue
		}
		r.routeSlot[slot] = rep
		// The promoted host is the slot's replica no longer; a checkpoint
		// round (or join) re-acquires one with a fresh snapshot install.
		r.replicaSlot[slot] = -1
		r.lastSnap[slot].Store(0)
		if err := r.links[rep].sendq.Put(r.ctx, line); err != nil {
			// Replica died too; next sendLine attempt will cascade.
			continue
		}
		if ep != nil && ep.ended.Load() {
			r.headMu.Lock()
			if !ep.finished {
				ep.pendingPromotes++
			}
			r.headMu.Unlock()
		}
	}
	// Replica assignments pointing at the dead link are void.
	for slot, rep := range r.replicaSlot {
		if rep == l.idx {
			r.replicaSlot[slot] = -1
			r.lastSnap[slot].Store(0)
		}
	}
	// The dead worker sends no "done"; release the drain from waiting on it.
	if ep != nil {
		r.headMu.Lock()
		delete(ep.doneNeed, l.idx)
		r.checkFinishLocked(ep)
		r.headMu.Unlock()
	}
	r.failRound(l)
}

// pause stalls routing (and end-of-stream) for a quiesced cut. Callers hold
// ckptMu, so cuts never overlap; unpause releases the stall.
func (r *Router) pause() {
	r.routeMu.Lock()
	r.paused = true
	r.routeMu.Unlock()
}

func (r *Router) unpause() {
	r.routeMu.Lock()
	r.paused = false
	r.routeMu.Unlock()
}

// clonePlace copies the placement ring (ring.Ring is not thread-safe and
// has no copy method; rebuilding from Members is version-independent, which
// is all Rebalance reads).
func (r *Router) clonePlace() *ring.Ring {
	c := ring.New(r.cfg.Vnodes)
	for _, m := range r.place.Members() {
		c.Add(m)
	}
	return c
}

// recomputeHealthLocked (routeMu held) re-derives the degraded flag from
// the slot table: the cluster is degraded while any slot is unservable.
func (r *Router) recomputeHealthLocked() {
	for _, li := range r.routeSlot {
		if li < 0 {
			r.degraded.Store(true)
			return
		}
	}
	r.degraded.Store(false)
}

// pingLoop probes worker liveness.
func (r *Router) pingLoop() {
	defer r.wg.Done()
	line, err := server.EncodeLine(server.Msg{Kind: server.KindPing})
	if err != nil {
		return
	}
	t := time.NewTicker(r.cfg.PingEvery)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			r.routeMu.Lock()
			r.broadcastToLinks(line)
			r.routeMu.Unlock()
		}
	}
}
