package router

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/server"
)

// The router's client side speaks the same protocol subset as a
// single-process streamd: tuple, sub, end, ckpt, ping. Clients cannot tell
// the difference — that is the point.

func (r *Router) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		c := server.TrackConn(conn)
		r.mu.Lock()
		if r.shutdown {
			r.mu.Unlock()
			c.Close()
			continue
		}
		r.conns[c] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go r.handleConn(c)
	}
}

func (r *Router) handleConn(c *server.ConnTrack) {
	defer r.wg.Done()
	defer func() {
		r.mu.Lock()
		delete(r.conns, c)
		r.mu.Unlock()
		c.Close()
	}()
	w := bufio.NewWriter(c)
	var sub *server.Subscriber
	defer func() {
		if sub != nil && r.hub.Remove(sub) {
			sub.Close()
		}
	}()
	reply := func(m server.Msg) {
		line, err := server.EncodeLine(m)
		if err != nil {
			return
		}
		if sub != nil {
			sub.SendControl(line, r.hub)
			return
		}
		w.Write(line)
		w.Flush()
	}
	errReply := func(format string, args ...any) {
		reply(server.Msg{Kind: server.KindErr, Error: sprintf(format, args...)})
	}
	wr := server.NewWireReader(c, 1<<20)
	var bdec *server.BwDecoder
	for {
		line, fr, rerr := wr.Next()
		if rerr != nil {
			if rerr != io.EOF {
				r.ingestErrs.Add(1)
				c.CountDecodeErr()
				errReply("read error: %v", rerr)
			}
			break
		}
		if line == nil {
			// Binary frame from a client: decode and feed the same routing
			// path JSON tuples take.
			c.CountFrame()
			if bdec == nil {
				bdec = server.NewBwDecoder()
			}
			n, err := r.handleClientFrame(fr, bdec)
			r.ingested.Add(uint64(n))
			if err != nil {
				r.ingestErrs.Add(1)
				c.CountDecodeErr()
				errReply("%v", err)
			}
			continue
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		c.CountLine()
		var m server.Msg
		if err := json.Unmarshal(line, &m); err != nil {
			r.ingestErrs.Add(1)
			c.CountDecodeErr()
			errReply("bad line: %v", err)
			continue
		}
		switch m.Kind {
		case server.KindTuple:
			if err := r.routeTuple(m); err != nil {
				r.ingestErrs.Add(1)
				errReply("%v", err)
				continue
			}
			r.ingested.Add(1)
		case server.KindPing:
			reply(server.Msg{Kind: server.KindPong, Version: r.placeVer.Load()})
		case server.KindSub:
			if sub != nil {
				errReply("already subscribed")
				continue
			}
			newSub := server.NewSubscriber(r.cfg.SubBuffer)
			if !r.hub.Add(newSub) {
				errReply("router shutting down")
				continue
			}
			// The ack doubles as the resume contract: Seq is how many
			// client tuples this epoch has accepted (resend your input from
			// there), Alerts how many it has emitted (skip that many of the
			// replayed stream's duplicates). Both omitempty — a fresh
			// subscribe still acks the plain {"kind":"ok"}.
			ack := server.Msg{Kind: server.KindOK}
			if ep := r.epoch(); ep != nil && !ep.ended.Load() {
				ack.Seq = ep.routedSeq.Load()
				ack.Alerts = server.AlertsField(ep.alerts.Load())
			}
			w.Write(mustLine(ack))
			w.Flush()
			sub = newSub
			go r.hub.Pump(c, w, sub)
		case server.KindEnd:
			if err := r.endStream(); err != nil {
				errReply("%v", err)
				continue
			}
			reply(server.Msg{Kind: server.KindOK})
		case server.KindCkpt:
			if err := r.clusterCheckpoint(); err != nil {
				errReply("checkpoint: %v", err)
				continue
			}
			reply(server.Msg{Kind: server.KindOK})
		case server.KindJoin:
			// A worker (or operator) offering a new worker at Addr. The
			// admit runs a full quiesced cut; synchronous is fine — this
			// connection only learns the outcome from the ack anyway.
			if m.Addr == "" {
				errReply("join offer needs addr")
				continue
			}
			if err := r.AdmitWorker(m.Addr); err != nil {
				errReply("join %s: %v", m.Addr, err)
				continue
			}
			reply(server.Msg{Kind: server.KindOK, Version: r.placeVer.Load()})
		case server.KindLeave:
			// An administrative drain request for the worker at Addr.
			if m.Addr == "" {
				errReply("leave needs addr")
				continue
			}
			var target *link
			r.routeMu.Lock()
			for _, l := range r.links {
				if l.alive.Load() && l.addr == m.Addr {
					target = l
					break
				}
			}
			r.routeMu.Unlock()
			if target == nil {
				errReply("leave %s: no such worker", m.Addr)
				continue
			}
			r.removeWorker(target)
			reply(server.Msg{Kind: server.KindOK, Version: r.placeVer.Load()})
		default:
			r.ingestErrs.Add(1)
			errReply("unknown kind %q", m.Kind)
		}
	}
}

// handleClientFrame dispatches one binary frame from a client connection,
// returning how many tuples it routed. Decoded tuples are converted back
// to Msg form and routed exactly like JSON ones — the router's per-tuple
// cost lives on the worker links, which Config.Proto controls separately.
func (r *Router) handleClientFrame(fr server.BwFrame, bdec *server.BwDecoder) (int, error) {
	switch fr.Kind {
	case server.BwHello:
		return 0, server.DecodeBwHello(fr.Payload)
	case server.BwSchemaFrame:
		_, err := bdec.AddSchema(fr.Payload)
		return 0, err
	case server.BwTuples:
		bts, err := bdec.DecodeTuples(fr.Payload)
		if err != nil {
			return 0, err
		}
		for i := range bts {
			if err := r.routeTuple(bts[i].Msg()); err != nil {
				return i, err
			}
		}
		return len(bts), nil
	default:
		return 0, fmt.Errorf("unknown binary frame kind %#x", fr.Kind)
	}
}

func mustLine(m server.Msg) []byte {
	line, err := server.EncodeLine(m)
	if err != nil {
		panic(err) // fixed-shape control messages always encode
	}
	return line
}
