package router

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"

	"repro/internal/server"
)

// The router's client side speaks the same protocol subset as a
// single-process streamd: tuple, sub, end, ckpt, ping. Clients cannot tell
// the difference — that is the point.

func (r *Router) acceptLoop() {
	defer r.wg.Done()
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		if r.shutdown {
			r.mu.Unlock()
			c.Close()
			continue
		}
		r.conns[c] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go r.handleConn(c)
	}
}

func (r *Router) handleConn(c net.Conn) {
	defer r.wg.Done()
	defer func() {
		r.mu.Lock()
		delete(r.conns, c)
		r.mu.Unlock()
		c.Close()
	}()
	w := bufio.NewWriter(c)
	var sub *server.Subscriber
	defer func() {
		if sub != nil && r.hub.Remove(sub) {
			sub.Close()
		}
	}()
	reply := func(m server.Msg) {
		line, err := server.EncodeLine(m)
		if err != nil {
			return
		}
		if sub != nil {
			sub.SendControl(line, r.hub)
			return
		}
		w.Write(line)
		w.Flush()
	}
	errReply := func(format string, args ...any) {
		reply(server.Msg{Kind: server.KindErr, Error: sprintf(format, args...)})
	}
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var m server.Msg
		if err := json.Unmarshal(line, &m); err != nil {
			r.ingestErrs.Add(1)
			errReply("bad line: %v", err)
			continue
		}
		switch m.Kind {
		case server.KindTuple:
			if err := r.routeTuple(m); err != nil {
				r.ingestErrs.Add(1)
				errReply("%v", err)
				continue
			}
			r.ingested.Add(1)
		case server.KindPing:
			reply(server.Msg{Kind: server.KindPong, Version: r.placeVer.Load()})
		case server.KindSub:
			if sub != nil {
				errReply("already subscribed")
				continue
			}
			newSub := server.NewSubscriber(r.cfg.SubBuffer)
			if !r.hub.Add(newSub) {
				errReply("router shutting down")
				continue
			}
			// The ack doubles as the resume contract: Seq is how many
			// client tuples this epoch has accepted (resend your input from
			// there), Alerts how many it has emitted (skip that many of the
			// replayed stream's duplicates). Both omitempty — a fresh
			// subscribe still acks the plain {"kind":"ok"}.
			ack := server.Msg{Kind: server.KindOK}
			if ep := r.epoch(); ep != nil && !ep.ended.Load() {
				ack.Seq = ep.routedSeq.Load()
				ack.Alerts = ep.alerts.Load()
			}
			w.Write(mustLine(ack))
			w.Flush()
			sub = newSub
			go r.hub.Pump(c, w, sub)
		case server.KindEnd:
			if err := r.endStream(); err != nil {
				errReply("%v", err)
				continue
			}
			reply(server.Msg{Kind: server.KindOK})
		case server.KindCkpt:
			if err := r.clusterCheckpoint(); err != nil {
				errReply("checkpoint: %v", err)
				continue
			}
			reply(server.Msg{Kind: server.KindOK})
		case server.KindJoin:
			// A worker (or operator) offering a new worker at Addr. The
			// admit runs a full quiesced cut; synchronous is fine — this
			// connection only learns the outcome from the ack anyway.
			if m.Addr == "" {
				errReply("join offer needs addr")
				continue
			}
			if err := r.AdmitWorker(m.Addr); err != nil {
				errReply("join %s: %v", m.Addr, err)
				continue
			}
			reply(server.Msg{Kind: server.KindOK, Version: r.placeVer.Load()})
		case server.KindLeave:
			// An administrative drain request for the worker at Addr.
			if m.Addr == "" {
				errReply("leave needs addr")
				continue
			}
			var target *link
			r.routeMu.Lock()
			for _, l := range r.links {
				if l.alive.Load() && l.addr == m.Addr {
					target = l
					break
				}
			}
			r.routeMu.Unlock()
			if target == nil {
				errReply("leave %s: no such worker", m.Addr)
				continue
			}
			r.removeWorker(target)
			reply(server.Msg{Kind: server.KindOK, Version: r.placeVer.Load()})
		default:
			r.ingestErrs.Add(1)
			errReply("unknown kind %q", m.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		r.ingestErrs.Add(1)
		errReply("read error: %v", err)
	}
}

func mustLine(m server.Msg) []byte {
	line, err := server.EncodeLine(m)
	if err != nil {
		panic(err) // fixed-shape control messages always encode
	}
	return line
}
