package router

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/uop"
)

// These tests pin the binary wire protocol at cluster scale: with
// Config.Proto = "bin" every router↔worker link carries schema-interned
// tuple frames, binary close punctuations, and binary part blobs — and
// the alert stream must still match the offline reference byte for
// byte, including under failover. Clients are free to pick their own
// protocol per connection; both are exercised against binary links.

// sendFrames writes raw binary frame bytes to the router, interleaving
// with the client's JSON lines.
func (c *testClient) sendFrames(raw []byte) {
	c.t.Helper()
	if _, err := c.w.Write(raw); err != nil {
		c.t.Fatalf("send frames: %v", err)
	}
	if err := c.w.Flush(); err != nil {
		c.t.Fatalf("flush: %v", err)
	}
}

// encodeBinary batches msgs into the binary ingest stream a -proto bin
// replay client sends.
func encodeBinary(t testing.TB, msgs []server.Msg) []byte {
	t.Helper()
	bb := server.NewBwBatcher()
	for _, m := range msgs {
		if err := bb.Add(m); err != nil {
			t.Fatalf("batch tuple: %v", err)
		}
	}
	return bb.Take()
}

// TestRouterBinaryLinksByteIdentical: the cluster acceptance criterion
// holds unchanged when the worker links speak binary — tumbling and
// sliding windows, multiple worker counts, same offline reference.
func TestRouterBinaryLinksByteIdentical(t *testing.T) {
	base := wireTrace(t, 40, 300)
	cases := []struct {
		name    string
		mut     func(*uop.Q1Config)
		workers []int
	}{
		{"tumbling", nil, []int{1, 2, 4}},
		{"sliding", func(c *uop.Q1Config) { c.SlideMS = 1500 * stream.Millisecond }, []int{2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := clusterQ1Cfg()
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			ref := offlineAlertLines(t, base, cfg)
			if len(ref) == 0 {
				t.Fatal("offline reference produced no alerts")
			}
			for _, workers := range tc.workers {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					cl := startCluster(t, workers, cfg, func(c *Config) { c.Proto = "bin" })
					sub := subscribe(t, cl.rt)
					ingest := dialRouter(t, cl.rt)
					for _, m := range base {
						ingest.send(m)
					}
					ingest.send(server.Msg{Kind: server.KindEnd})
					if m := ingest.recv(60 * time.Second); m.Kind != server.KindOK {
						t.Fatalf("end: got %+v", m)
					}
					diffLines(t, ref, collectAlerts(t, sub), fmt.Sprintf("bin workers=%d", workers))
					for _, w := range cl.rt.Stats().Workers {
						if w.Proto != "bin" {
							t.Errorf("worker %d link proto %q, want bin", w.Slot, w.Proto)
						}
					}
				})
			}
		})
	}
}

// TestRouterBinaryClientIngest: a client sending binary tuple frames to
// the router (which decodes them into the same routing path JSON lines
// take) reproduces the reference over binary links, and /statsz labels
// the client connection's negotiated protocol.
func TestRouterBinaryClientIngest(t *testing.T) {
	msgs := wireTrace(t, 40, 300)
	cfg := clusterQ1Cfg()
	ref := offlineAlertLines(t, msgs, cfg)
	if len(ref) == 0 {
		t.Fatal("offline reference produced no alerts")
	}
	cl := startCluster(t, 2, cfg, func(c *Config) { c.Proto = "bin" })
	sub := subscribe(t, cl.rt)
	ingest := dialRouter(t, cl.rt)
	ingest.sendFrames(server.EncodeBwHello())
	ingest.sendFrames(encodeBinary(t, msgs))
	ingest.send(server.Msg{Kind: server.KindEnd})
	if m := ingest.recv(60 * time.Second); m.Kind != server.KindOK {
		t.Fatalf("end: got %+v", m)
	}
	diffLines(t, ref, collectAlerts(t, sub), "binary client")

	var protos []string
	for _, c := range cl.rt.Stats().Conns {
		protos = append(protos, c.Proto)
	}
	seenBin := false
	for _, p := range protos {
		if p == "bin" {
			seenBin = true
		}
	}
	if !seenBin {
		t.Errorf("statsz conns %v: no connection negotiated bin", protos)
	}
}

// TestRouterFailoverKillWorkerBinary: the replication acceptance test
// over binary links — checkpoint, SIGKILL a worker mid-stream, and the
// promoted replica's tail replay (binary tail records, binary close
// punctuations) still reproduces the reference byte for byte.
func TestRouterFailoverKillWorkerBinary(t *testing.T) {
	msgs := wireTrace(t, 40, 300)
	cfg := clusterQ1Cfg()
	ref := offlineAlertLines(t, msgs, cfg)
	if len(ref) == 0 {
		t.Fatal("offline reference produced no alerts")
	}
	cl := startCluster(t, 3, cfg, func(c *Config) {
		c.Replicas = 2
		c.Proto = "bin"
	})
	sub := subscribe(t, cl.rt)
	ingest := dialRouter(t, cl.rt)

	third := len(msgs) / 3
	for _, m := range msgs[:third] {
		ingest.send(m)
	}
	ingest.send(server.Msg{Kind: server.KindCkpt})
	if m := ingest.recv(60 * time.Second); m.Kind != server.KindOK {
		t.Fatalf("ckpt: got %+v", m)
	}
	for _, m := range msgs[third : 2*third] {
		ingest.send(m)
	}
	cl.workers[1].Crash()
	for _, m := range msgs[2*third:] {
		ingest.send(m)
	}
	ingest.send(server.Msg{Kind: server.KindEnd})
	if m := ingest.recv(60 * time.Second); m.Kind != server.KindOK {
		t.Fatalf("end: got %+v", m)
	}
	diffLines(t, ref, collectAlerts(t, sub), "bin failover")

	st := cl.rt.Stats()
	if st.Failovers < 1 {
		t.Errorf("stats report %d failovers, want >= 1", st.Failovers)
	}
	if st.Degraded {
		t.Error("stats report degraded: the killed slot had a live replica")
	}
}
