package router

import (
	"errors"
	"fmt"

	"repro/internal/ring"
	"repro/internal/server"
)

// Live membership. Joins and leaves happen at epoch boundaries in the
// checkpoint sense: the change takes effect at a quiesced cut (the same
// pause-and-snapshot round ckpt.go runs), so every migrated slot moves with
// a snapshot taken at the cut and an aligned promote — the subscriber's
// alert stream is byte-identical to a run where the slot never moved.
//
// The key ring (slots) never changes; only the placement ring does. A join
// migrates exactly the slots ring.Rebalance hands the newcomer — plus every
// degraded slot, which has no host at all and takes the joiner as its new
// home (fresh instance, merge-floor aligned). A leave migrates exactly the
// leaver's slots to their new placement owners. Everything else stays put.

// AdmitWorker dials addr, joins it into the cluster at a quiesced cut, and
// migrates its ring share (and every degraded slot) onto it. Called from a
// client connection's "join" line or directly by an operator.
func (r *Router) AdmitWorker(addr string) error {
	if r.ctx.Err() != nil {
		return errors.New("router shutting down")
	}
	r.memberMu.Lock()
	defer r.memberMu.Unlock()
	r.routeMu.Lock()
	for _, l := range r.links {
		if l.alive.Load() && l.addr == addr {
			r.routeMu.Unlock()
			return fmt.Errorf("worker %s already joined", addr)
		}
	}
	r.routeMu.Unlock()
	// Dial and handshake before pausing anyone: a slow or broken joiner
	// must not stall the stream. The empty reset clears any orphaned epoch
	// the worker may still be running.
	l, err := r.dialWorker(-1, addr, &server.ResetBlob{})
	if err != nil {
		return err
	}
	reject := func(err error) error {
		l.sendq.Close()
		l.conn.Close()
		return err
	}
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	ep := r.epoch()
	if ep == nil || ep.ended.Load() {
		return reject(errors.New("stream draining; retry join"))
	}
	r.pause()
	defer r.unpause()
	id := r.ckptSeq.Add(1)
	snaps, err := r.quiescedRound(ep, id)
	if err != nil {
		return reject(fmt.Errorf("join aborted: %w", err))
	}
	r.routeMu.Lock()
	l.idx = len(r.links)
	l.member = hostID(r.hostSeq)
	r.hostSeq++
	r.links = append(r.links, l)
	r.memberLink[l.member] = l.idx
	old := r.clonePlace()
	r.place.Add(ring.Member{ID: l.member})
	r.placeVer.Store(r.placeVer.Load() + 1)
	rebal := ring.Rebalance(old, r.place)
	r.movedRanges.Store(uint64(len(rebal)))
	r.rebalances.Add(1)
	var moved []int
	for slot := 0; slot < r.nslots; slot++ {
		if r.routeSlot[slot] < 0 {
			// Degraded: the joiner re-homes it (fresh instance, aligned to
			// the merge floor). This is what clears degraded mode.
			moved = append(moved, slot)
			continue
		}
		owner, ok := r.place.Owner(int64(slot))
		if !ok || owner != l.member {
			continue
		}
		if prev, _ := old.Owner(int64(slot)); prev != owner {
			moved = append(moved, slot)
		}
	}
	for _, slot := range moved {
		var sn roundSnap
		var cid uint64
		if r.routeSlot[slot] >= 0 {
			sn, cid = snaps[slot], id
		}
		r.migrateSlotLocked(ep, slot, l.idx, cid, sn)
	}
	r.lastMoved = append([]int(nil), moved...)
	for s := range r.slotSnaps {
		r.slotSnaps[s] = snaps[s]
	}
	if r.cfg.Replicas >= 2 {
		r.recomputeReplicasLocked(id, snaps)
	}
	r.recomputeHealthLocked()
	r.routeMu.Unlock()
	if r.cfg.Store != nil && !r.crashed.Load() {
		if err := r.persistState(ep, id); err != nil {
			r.ckptErrs.Add(1)
		}
	}
	r.startLink(l)
	return nil
}

// migrateSlotLocked (routeMu held, at a quiesced cut) moves one slot to the
// link at dest: install the cut's snapshot (when the slot has one), promote
// the destination aligned to the router's merge floor, release the old
// host, and flip the serving table. FIFO queues do the sequencing — no acks
// are waited on; the destination processes install before promote before
// any post-cut tuple.
func (r *Router) migrateSlotLocked(ep *repoch, slot, dest int, ckptID uint64, sn roundSnap) {
	old := r.routeSlot[slot]
	s := slot
	dl := r.links[dest]
	if sn.present() {
		line, err := server.EncodeLine(server.Msg{
			Kind:   server.KindSnap,
			Shard:  &s,
			Ckpt:   ckptID,
			Closes: sn.closes,
			Data:   sn.data,
		})
		if err != nil {
			r.encodeErrs.Add(1)
			return
		}
		if dl.sendq.Put(r.ctx, line) != nil {
			return // dest died; the slot keeps its old host (or stays degraded)
		}
	}
	var floor uint64
	if ep != nil {
		r.headMu.Lock()
		floor = ep.closes[slot]
		r.headMu.Unlock()
	}
	promote := server.Msg{
		Kind:   server.KindPromote,
		Shard:  &s,
		Closes: floor,
		Ckpt:   ckptID,
		Align:  true,
	}
	line, err := server.EncodeLine(promote)
	if err != nil {
		r.encodeErrs.Add(1)
		return
	}
	if dl.sendq.Put(r.ctx, line) != nil {
		return
	}
	if old >= 0 && old != dest && r.links[old].alive.Load() {
		if rl, err := server.EncodeLine(server.Msg{Kind: server.KindRelease, Shard: &s}); err == nil {
			r.links[old].sendq.Put(r.ctx, rl)
		} else {
			r.encodeErrs.Add(1)
		}
	}
	r.routeSlot[slot] = dest
	if r.replicaSlot[slot] == dest {
		// The new host can't be its own replica; a recompute reassigns.
		r.replicaSlot[slot] = -1
		r.lastSnap[slot].Store(0)
	}
}

// removeWorker handles a graceful departure ("leave"): at a quiesced cut,
// the leaver's slots migrate to their new placement owners with the cut's
// snapshots, then the link retires. Called from the leaver's link reader
// (async) or a client "leave" line.
func (r *Router) removeWorker(l *link) {
	if r.ctx.Err() != nil {
		return
	}
	r.memberMu.Lock()
	defer r.memberMu.Unlock()
	if !l.alive.Load() {
		return
	}
	r.routeMu.Lock()
	live := 0
	for _, x := range r.links {
		if x.alive.Load() {
			live++
		}
	}
	r.routeMu.Unlock()
	if live <= 1 {
		return // the last worker has nowhere to hand its slots; ignore
	}
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	ep := r.epoch()
	if ep == nil || ep.ended.Load() {
		// Mid-drain departure: the ordinary failover path promotes its
		// slots and keeps the drain accounting right.
		r.failLink(l)
		return
	}
	r.pause()
	defer r.unpause()
	id := r.ckptSeq.Add(1)
	snaps, err := r.quiescedRound(ep, id)
	if err != nil {
		r.failLink(l) // round broken — treat the departure as a death
		return
	}
	r.routeMu.Lock()
	if !l.alive.Load() {
		r.routeMu.Unlock()
		return // died during the round; failover already ran
	}
	old := r.clonePlace()
	r.place.Remove(l.member)
	delete(r.memberLink, l.member)
	r.placeVer.Store(r.placeVer.Load() + 1)
	rebal := ring.Rebalance(old, r.place)
	r.movedRanges.Store(uint64(len(rebal)))
	r.rebalances.Add(1)
	var moved []int
	for slot := 0; slot < r.nslots; slot++ {
		if r.routeSlot[slot] != l.idx {
			continue
		}
		dest := -1
		if owner, ok := r.place.Owner(int64(slot)); ok {
			if oi, ok := r.memberLink[owner]; ok && r.links[oi].alive.Load() {
				dest = oi
			}
		}
		if dest < 0 {
			for _, x := range r.links {
				if x.alive.Load() && x.idx != l.idx {
					dest = x.idx
					break
				}
			}
		}
		if dest < 0 {
			continue
		}
		r.migrateSlotLocked(ep, slot, dest, id, snaps[slot])
		moved = append(moved, slot)
	}
	r.lastMoved = append([]int(nil), moved...)
	for s := range r.slotSnaps {
		r.slotSnaps[s] = snaps[s]
	}
	// Retire the link. The release/close lines just queued still flush:
	// the sender drains the buffered queue before exiting.
	l.alive.Store(false)
	l.sendq.Close()
	if l.conn != nil {
		l.conn.Close()
	}
	for slot, rep := range r.replicaSlot {
		if rep == l.idx {
			r.replicaSlot[slot] = -1
			r.lastSnap[slot].Store(0)
		}
	}
	if r.cfg.Replicas >= 2 {
		r.recomputeReplicasLocked(id, snaps)
	}
	r.recomputeHealthLocked()
	r.routeMu.Unlock()
	if r.cfg.Store != nil && !r.crashed.Load() {
		if err := r.persistState(ep, id); err != nil {
			r.ckptErrs.Add(1)
		}
	}
}
