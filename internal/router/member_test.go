package router

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/server"
)

// The tests in this file pin live membership: a worker joining mid-stream
// takes over exactly the slots ring.Rebalance hands it — byte-identically —
// and a cluster that lost a slot entirely (owner and replica both dead)
// keeps serving the surviving slots in degraded mode until a replacement
// join re-homes the lost slot and clears the flag.

// startWorker boots one additional worker server compatible with the
// running cluster.
func startWorker(t *testing.T, cl *cluster) *server.Server {
	t.Helper()
	plan := routerPlan(t, clusterQ1Cfg())
	s, err := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		NewPlan:    plan.CompileWorker,
		FlushEvery: 10 * time.Millisecond,
		Cluster:    true,
	})
	if err != nil {
		t.Fatalf("extra worker: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	cl.workers = append(cl.workers, s)
	return s
}

// offerJoin sends a {"kind":"join","addr":...} offer on a client connection
// and waits for the ack.
func offerJoin(t *testing.T, rt *Router, addr string) server.Msg {
	t.Helper()
	c := dialRouter(t, rt)
	c.send(server.Msg{Kind: server.KindJoin, Addr: addr})
	m := c.recv(60 * time.Second)
	if m.Kind != server.KindOK {
		t.Fatalf("join offer: got %+v", m)
	}
	return m
}

// expectedJoinMoves replicates the router's placement arithmetic: with
// hosts h0..h{n-1} and h{n} joining, the slots that must move are exactly
// those whose placement owner becomes the newcomer.
func expectedJoinMoves(slots, hosts int) []int {
	old := ring.New(0)
	for i := 0; i < hosts; i++ {
		old.Add(ring.Member{ID: hostID(i)})
	}
	cur := ring.New(0)
	for i := 0; i <= hosts; i++ {
		cur.Add(ring.Member{ID: hostID(i)})
	}
	joiner := hostID(hosts)
	var moved []int
	for s := 0; s < slots; s++ {
		oo, _ := old.Owner(int64(s))
		no, _ := cur.Owner(int64(s))
		if no == joiner && oo != no {
			moved = append(moved, s)
		}
	}
	return moved
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRouterJoinMidStream: a third worker joins a live 2-worker, 10-slot
// stream. Exactly the ring.Rebalance-diff slots migrate onto it, the
// placement version bumps, and the drained alert stream is byte-identical
// to the offline reference.
func TestRouterJoinMidStream(t *testing.T) {
	const slots = 10
	wantMoved := expectedJoinMoves(slots, 2)
	if len(wantMoved) == 0 {
		t.Fatal("test geometry gives the joiner no slots; pick a different slot count")
	}
	msgs := wireTrace(t, 40, 300)
	cfg := clusterQ1Cfg()
	ref := offlineAlertLines(t, msgs, cfg)
	if len(ref) == 0 {
		t.Fatal("offline reference produced no alerts")
	}
	cl := startCluster(t, 2, cfg, func(c *Config) { c.Slots = slots })
	sub := subscribe(t, cl.rt)
	ingest := dialRouter(t, cl.rt)
	verBefore := cl.rt.Stats().Ring.Version

	half := len(msgs) / 2
	for _, m := range msgs[:half] {
		ingest.send(m)
	}
	joiner := startWorker(t, cl)
	ack := offerJoin(t, cl.rt, joiner.Addr().String())
	if ack.Version != verBefore+1 {
		t.Errorf("join ack version %d, want %d", ack.Version, verBefore+1)
	}
	for _, m := range msgs[half:] {
		ingest.send(m)
	}
	ingest.send(server.Msg{Kind: server.KindEnd})
	if m := ingest.recv(60 * time.Second); m.Kind != server.KindOK {
		t.Fatalf("end: got %+v", m)
	}
	diffLines(t, ref, collectAlerts(t, sub), "join-mid-stream")

	st := cl.rt.Stats()
	if st.Ring.Version != verBefore+1 {
		t.Errorf("ring version %d, want %d", st.Ring.Version, verBefore+1)
	}
	if st.Ring.Rebalances != 1 {
		t.Errorf("rebalances = %d, want 1", st.Ring.Rebalances)
	}
	if st.Ring.MovedRanges == 0 {
		t.Error("moved_ranges = 0, want the last rebalance's diff size")
	}
	if !sameInts(st.Ring.MovedSlots, wantMoved) {
		t.Errorf("moved slots %v, want exactly the rebalance diff %v", st.Ring.MovedSlots, wantMoved)
	}
	if len(st.Workers) != 3 {
		t.Fatalf("statsz reports %d workers, want 3", len(st.Workers))
	}
	if !sameInts(st.Workers[2].ServesSlots, wantMoved) {
		t.Errorf("joiner serves %v, want %v", st.Workers[2].ServesSlots, wantMoved)
	}
	for _, row := range st.Ring.Slots {
		if row.Degraded || row.Owner < 0 {
			t.Errorf("slot %d unserved after join: %+v", row.Slot, row)
		}
	}
	if st.Degraded {
		t.Error("degraded after a clean join")
	}
}

// TestRouterDegradedLossAndRecovery is the total-loss drill: kill a slot's
// replica, then its owner. The surviving slots keep alerting (degraded
// mode, documented as lossy for the dead slot), /statsz names the lost
// slot, and a replacement join re-homes it and clears the flag.
func TestRouterDegradedLossAndRecovery(t *testing.T) {
	msgs := wireTrace(t, 40, 300)
	cfg := clusterQ1Cfg()
	ref := offlineAlertLines(t, msgs, cfg)
	cl := startCluster(t, 3, cfg, func(c *Config) { c.Replicas = 2 })
	sub := subscribe(t, cl.rt)
	got := make(chan []string, 1)
	go drainAlerts(t, sub, got)
	ingest := dialRouter(t, cl.rt)

	third := len(msgs) / 3
	for _, m := range msgs[:third] {
		ingest.send(m)
	}

	// Pick a victim slot and kill its replica first, then its owner: no
	// copy of the slot's state survives.
	st := cl.rt.Stats()
	victim := st.Ring.Slots[0]
	if victim.Replica < 0 || victim.Replica == victim.Owner {
		t.Fatalf("slot 0 has no distinct replica: %+v", victim)
	}
	cl.workers[victim.Replica].Crash()
	waitStats(t, cl.rt, func(s Statsz) bool { return !s.Workers[victim.Replica].Alive })
	cl.workers[victim.Owner].Crash()
	waitStats(t, cl.rt, func(s Statsz) bool { return s.Degraded })

	st = cl.rt.Stats()
	if !st.Ring.Slots[victim.Slot].Degraded {
		t.Errorf("slot %d not marked degraded: %+v", victim.Slot, st.Ring.Slots)
	}

	// The surviving worker's slots keep flowing.
	for _, m := range msgs[third : 2*third] {
		ingest.send(m)
	}

	// A replacement joins; the lost slot re-homes (fresh state — its
	// windows since the loss are gone, by contract) and degraded clears.
	repl := startWorker(t, cl)
	offerJoin(t, cl.rt, repl.Addr().String())
	st = cl.rt.Stats()
	if st.Degraded {
		t.Error("still degraded after replacement join")
	}
	for _, row := range st.Ring.Slots {
		if row.Owner < 0 || row.Degraded {
			t.Errorf("slot %d still unserved after join: %+v", row.Slot, row)
		}
	}
	found := false
	for _, s := range st.Ring.MovedSlots {
		if s == victim.Slot {
			found = true
		}
	}
	if !found {
		t.Errorf("lost slot %d not in the join's moved set %v", victim.Slot, st.Ring.MovedSlots)
	}

	// And the stream still drains to a clean done.
	for _, m := range msgs[2*third:] {
		ingest.send(m)
	}
	ingest.send(server.Msg{Kind: server.KindEnd})
	if m := ingest.recv(60 * time.Second); m.Kind != server.KindOK {
		t.Fatalf("end: got %+v", m)
	}
	alerts := <-got
	if len(alerts) == 0 {
		t.Error("no alerts survived the loss; surviving slots should keep alerting")
	}
	if len(alerts) >= len(ref) {
		t.Errorf("degraded run produced %d alerts, reference has %d; the lost slot's windows should be missing", len(alerts), len(ref))
	}
}

// TestRouterGracefulLeave: a worker announcing "leave" hands its slots to
// the survivors at a quiesced cut — byte-identically.
func TestRouterGracefulLeave(t *testing.T) {
	msgs := wireTrace(t, 40, 300)
	cfg := clusterQ1Cfg()
	ref := offlineAlertLines(t, msgs, cfg)
	cl := startCluster(t, 3, cfg, nil)
	sub := subscribe(t, cl.rt)
	ingest := dialRouter(t, cl.rt)
	verBefore := cl.rt.Stats().Ring.Version

	half := len(msgs) / 2
	for _, m := range msgs[:half] {
		ingest.send(m)
	}
	// Administrative leave via the client protocol (the worker-initiated
	// "leave" line exercises the same removeWorker path).
	c := dialRouter(t, cl.rt)
	c.send(server.Msg{Kind: server.KindLeave, Addr: cl.workers[1].Addr().String()})
	if m := c.recv(60 * time.Second); m.Kind != server.KindOK {
		t.Fatalf("leave: got %+v", m)
	}
	for _, m := range msgs[half:] {
		ingest.send(m)
	}
	ingest.send(server.Msg{Kind: server.KindEnd})
	if m := ingest.recv(60 * time.Second); m.Kind != server.KindOK {
		t.Fatalf("end: got %+v", m)
	}
	diffLines(t, ref, collectAlerts(t, sub), "graceful-leave")

	st := cl.rt.Stats()
	if st.Ring.Version != verBefore+1 {
		t.Errorf("ring version %d, want %d after leave", st.Ring.Version, verBefore+1)
	}
	if st.Workers[1].Alive {
		t.Error("left worker still marked alive")
	}
	for _, row := range st.Ring.Slots {
		if row.Owner == 1 {
			t.Errorf("slot %d still owned by the departed worker", row.Slot)
		}
		if row.Owner < 0 {
			t.Errorf("slot %d unserved after leave", row.Slot)
		}
	}
	if st.Degraded {
		t.Error("degraded after a graceful leave")
	}
}

// waitStats polls the router's stats until cond holds.
func waitStats(t *testing.T, rt *Router, cond func(Statsz) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cond(rt.Stats()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats condition never held; last: %s", statsDump(rt))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func statsDump(rt *Router) string {
	st := rt.Stats()
	var b strings.Builder
	for _, w := range st.Workers {
		b.WriteString(sprintf("worker %d alive=%v serves=%v; ", w.Slot, w.Alive, w.ServesSlots))
	}
	b.WriteString(sprintf("degraded=%v", st.Degraded))
	return b.String()
}
