package router

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/server"
)

// Cluster checkpoint rounds. A round pauses routing (a quiesced cut), asks
// every live worker to snapshot each slot it hosts ("ckpt"), then installs
// each slot's snapshot on the slot's replica ("snap"). Once a snap_ack
// confirms the install, the replica has trimmed its replay tail to the
// post-checkpoint suffix, and a later promotion restores snapshot + suffix
// instead of replaying the whole epoch. The wire does the sequencing: the
// ckpt line rides each link's send queue after every tuple it must cover,
// and the worker marks its tails before snapshotting, so tail-trim points
// and snapshots agree.
//
// Because each worker's ckpt_ack rides the same FIFO connection as its part
// lines — and the worker snapshots only after draining its ingest queue —
// a completed round leaves the router having merged *everything* the cut
// covers: per-slot merged-close counts equal the workers' emitted-close
// ordinals, and no partials are pending. That uniform cut is what makes the
// round a safe point to persist the router's own state (Config.Store) and
// to migrate slots between hosts (membership changes reuse quiescedRound).

// roundSnap is one slot's snapshot from a completed round: the plan
// checkpoint bytes and the window-close count it covers.
type roundSnap struct {
	closes uint64
	data   []byte
}

// ckptLoop drives periodic rounds.
func (r *Router) ckptLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.CkptEvery)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			if err := r.clusterCheckpoint(); err != nil {
				r.ckptErrs.Add(1)
			}
		}
	}
}

// clusterCheckpoint runs one round and waits for it to settle.
func (r *Router) clusterCheckpoint() error {
	if r.cfg.Replicas < 2 && r.cfg.Store == nil {
		return errors.New("checkpointing needs -replicas 2 or a router -data-dir (nothing to install or persist)")
	}
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	ep := r.epoch()
	if ep == nil || ep.ended.Load() {
		return errors.New("no stream running")
	}
	r.pause()
	defer r.unpause()
	id := r.ckptSeq.Add(1)
	snaps, err := r.quiescedRound(ep, id)
	if err != nil {
		return err
	}
	r.commitRound(ep, id, snaps)
	r.ckptN.Add(1)
	return nil
}

// quiescedRound (ckptMu held, routing paused) runs one snapshot round and
// returns each live slot's snapshot. The ckpt line goes to every live link —
// links serving no slot still mark their replica tails, so a later install
// trims them at the same cut.
func (r *Router) quiescedRound(ep *repoch, id uint64) (map[int]roundSnap, error) {
	cr := &ckptRound{
		id:       id,
		ackNeed:  map[int]bool{},
		snapNeed: map[int]bool{},
		snaps:    map[int]roundSnap{},
		done:     make(chan struct{}),
	}
	line, err := server.EncodeLine(server.Msg{Kind: server.KindCkpt, Ckpt: id})
	if err != nil {
		return nil, err
	}
	r.round.Store(cr)
	defer r.round.Store(nil)
	r.routeMu.Lock()
	cr.mu.Lock()
	for slot, li := range r.routeSlot {
		if li >= 0 && r.links[li].alive.Load() {
			cr.ackNeed[slot] = true
		}
	}
	cr.mu.Unlock()
	if len(cr.ackNeed) == 0 {
		r.routeMu.Unlock()
		return nil, errors.New("no live workers")
	}
	for _, l := range r.links {
		if !l.alive.Load() {
			continue
		}
		if err := l.sendq.Put(r.ctx, line); err != nil && r.ctx.Err() == nil {
			r.failLinkLocked(l)
		}
	}
	r.routeMu.Unlock()
	select {
	case <-cr.done:
	case <-r.ctx.Done():
		return nil, r.ctx.Err()
	case <-time.After(30 * time.Second):
		return nil, errors.New("cluster checkpoint timed out")
	}
	cr.mu.Lock()
	err = cr.err
	snaps := cr.snaps
	cr.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return snaps, nil
}

// commitRound (ckptMu held, routing paused) records the round's snapshots,
// re-acquires replicas for slots that lost theirs, and — with a Store —
// persists the router's own state at the same cut.
func (r *Router) commitRound(ep *repoch, id uint64, snaps map[int]roundSnap) {
	r.routeMu.Lock()
	for slot := range r.slotSnaps {
		r.slotSnaps[slot] = snaps[slot]
	}
	if r.cfg.Replicas >= 2 {
		r.recomputeReplicasLocked(id, snaps)
	}
	r.routeMu.Unlock()
	if r.cfg.Store != nil && !r.crashed.Load() {
		if err := r.persistState(ep, id); err != nil {
			r.ckptErrs.Add(1)
		}
	}
}

// recomputeReplicasLocked (routeMu held, at a quiesced cut with this
// round's snapshots in hand) assigns a replica to every served slot that
// lost one — a failover consumed it, or its host died — walking the
// placement ring's successors. The fresh snapshot install starts the new
// replica's tail exactly at the cut, so promote-from-replica stays exact.
func (r *Router) recomputeReplicasLocked(id uint64, snaps map[int]roundSnap) {
	for slot, li := range r.routeSlot {
		if li < 0 {
			r.replicaSlot[slot] = -1
			continue
		}
		cur := r.replicaSlot[slot]
		if cur >= 0 && cur != li && r.links[cur].alive.Load() {
			continue // in-round install already refreshed it
		}
		r.replicaSlot[slot] = -1
		for _, member := range r.place.Successors(int64(slot), r.place.Len()) {
			idx, ok := r.memberLink[member]
			if !ok || idx == li || !r.links[idx].alive.Load() {
				continue
			}
			// A host never replicates its own home slot: its tails cover
			// every slot but that one.
			if r.links[idx].slot == slot {
				continue
			}
			sn, hasSnap := snaps[slot]
			if !hasSnap {
				// No cut snapshot to seed the candidate's tail — assigning
				// it anyway would leave a tail missing its prefix. Leave
				// the slot unreplicated until a round that covers it.
				break
			}
			s := slot
			line, err := server.EncodeLine(server.Msg{
				Kind:   server.KindSnap,
				Shard:  &s,
				Ckpt:   id,
				Closes: sn.closes,
				Data:   sn.data,
			})
			if err != nil {
				r.encodeErrs.Add(1)
				break
			}
			if r.links[idx].sendq.Put(r.ctx, line) == nil {
				// FIFO: the install lands before any later promote that
				// names it, so recording it now is safe.
				r.replicaSlot[slot] = idx
				r.lastSnap[slot].Store(id)
			}
			break
		}
	}
}

// onCkptAck (link reader) retains one slot's snapshot for the round and
// forwards it to the slot's replica, or completes the slot if it has none
// to install on.
func (r *Router) onCkptAck(l *link, m server.Msg) {
	cr := r.round.Load()
	if cr == nil || m.Shard == nil || m.Ckpt == 0 {
		return
	}
	slot := *m.Shard
	if slot < 0 || slot >= r.nslots {
		return // a slotless joiner's own-plan ack; nothing tracks it
	}
	// Read the topology before taking the round lock: failover holds
	// routeMu while aborting rounds, so cr.mu must never wait on routeMu.
	// The replica's link pointer is captured here too — joins grow the
	// slice, so indexing it is only safe under routeMu.
	r.routeMu.Lock()
	rep := r.replicaSlot[slot]
	serving := r.routeSlot[slot]
	var repLink *link
	if rep >= 0 {
		repLink = r.links[rep]
	}
	r.routeMu.Unlock()
	cr.mu.Lock()
	if m.Ckpt != cr.id || !cr.ackNeed[slot] {
		cr.mu.Unlock()
		return
	}
	delete(cr.ackNeed, slot)
	cr.snaps[slot] = roundSnap{closes: m.Closes, data: m.Data}
	// Install on the replica — unless the replica is the very link hosting
	// the slot (post-failover), or it is gone.
	if repLink == nil || rep == serving || !repLink.alive.Load() {
		cr.finishLocked()
		cr.mu.Unlock()
		return
	}
	snap := server.Msg{
		Kind:   server.KindSnap,
		Shard:  m.Shard,
		Ckpt:   m.Ckpt,
		Closes: m.Closes,
		Data:   m.Data,
	}
	line, err := server.EncodeLine(snap)
	if err != nil {
		r.encodeErrs.Add(1)
		cr.finishLocked()
		cr.mu.Unlock()
		return
	}
	cr.snapNeed[slot] = true
	cr.mu.Unlock()
	if err := repLink.sendq.Put(r.ctx, line); err != nil {
		cr.mu.Lock()
		delete(cr.snapNeed, slot)
		cr.finishLocked()
		cr.mu.Unlock()
	}
}

// onSnapAck records a confirmed install: from here on, a promotion of this
// slot names this checkpoint.
func (r *Router) onSnapAck(m server.Msg) {
	cr := r.round.Load()
	if cr == nil || m.Shard == nil {
		return
	}
	slot := *m.Shard
	if slot < 0 || slot >= r.nslots {
		return
	}
	cr.mu.Lock()
	if m.Ckpt == cr.id && cr.snapNeed[slot] {
		delete(cr.snapNeed, slot)
		r.lastSnap[slot].Store(m.Ckpt)
		cr.finishLocked()
	}
	cr.mu.Unlock()
}

// failRound aborts an in-flight round when a worker dies: acks still
// outstanding may never come (the dead link's, or a just-redirected
// slot's), so the round fails fast instead of stalling to the timeout. The
// next round covers the new topology; lastSnap keeps only acked installs.
func (r *Router) failRound(l *link) {
	cr := r.round.Load()
	if cr == nil {
		return
	}
	cr.mu.Lock()
	if len(cr.ackNeed)+len(cr.snapNeed) > 0 {
		cr.err = fmt.Errorf("worker %d died mid-checkpoint", l.idx)
		cr.ackNeed = map[int]bool{}
		cr.snapNeed = map[int]bool{}
	}
	cr.finishLocked()
	cr.mu.Unlock()
}
