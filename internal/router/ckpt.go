package router

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/server"
)

// Cluster checkpoint rounds. A round asks every live worker to snapshot
// each slot it hosts ("ckpt"), then installs each slot's snapshot on the
// slot's replica ("snap"). Once a snap_ack confirms the install, the
// replica has trimmed its replay tail to the post-checkpoint suffix, and a
// later promotion restores snapshot + suffix instead of replaying the
// whole epoch. The wire does the sequencing: the ckpt line rides each
// link's send queue after every tuple it must cover, and the worker marks
// its tails before snapshotting, so tail-trim points and snapshots agree.

// ckptLoop drives periodic rounds.
func (r *Router) ckptLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.CkptEvery)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			if err := r.clusterCheckpoint(); err != nil {
				r.ckptErrs.Add(1)
			}
		}
	}
}

// clusterCheckpoint runs one round and waits for it to settle.
func (r *Router) clusterCheckpoint() error {
	if r.cfg.Replicas < 2 {
		return errors.New("checkpointing needs -replicas 2 (no replica to install snapshots on)")
	}
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	ep := r.epoch()
	if ep == nil || ep.ended.Load() {
		return errors.New("no stream running")
	}
	id := r.ckptSeq.Add(1)
	cr := &ckptRound{
		id:       id,
		ackNeed:  map[int]bool{},
		snapNeed: map[int]bool{},
		done:     make(chan struct{}),
	}
	line, err := server.EncodeLine(server.Msg{Kind: server.KindCkpt, Ckpt: id})
	if err != nil {
		return err
	}
	r.round.Store(cr)
	defer r.round.Store(nil)
	// One ckpt line per live link; each replies one ckpt_ack per slot it
	// hosts. Slots routed to a dead link (degraded) are skipped.
	r.routeMu.Lock()
	sent := map[int]bool{}
	cr.mu.Lock()
	for slot, li := range r.routeSlot {
		if li >= 0 && r.links[li].alive.Load() {
			cr.ackNeed[slot] = true
			sent[li] = true
		}
	}
	cr.mu.Unlock()
	if len(sent) == 0 {
		return errors.New("no live workers")
	}
	for li := range sent {
		if err := r.links[li].sendq.Put(r.ctx, line); err != nil && r.ctx.Err() == nil {
			r.failLinkLocked(r.links[li])
		}
	}
	r.routeMu.Unlock()
	select {
	case <-cr.done:
	case <-r.ctx.Done():
		return r.ctx.Err()
	case <-time.After(30 * time.Second):
		return errors.New("cluster checkpoint timed out")
	}
	cr.mu.Lock()
	err = cr.err
	cr.mu.Unlock()
	if err != nil {
		return err
	}
	r.ckptN.Add(1)
	return nil
}

// onCkptAck (link reader) forwards one slot's snapshot to the slot's
// replica, or completes the slot if it has none to install on.
func (r *Router) onCkptAck(l *link, m server.Msg) {
	cr := r.round.Load()
	if cr == nil || m.Shard == nil || m.Ckpt == 0 {
		return
	}
	slot := *m.Shard
	// Read the topology before taking the round lock: failover holds
	// routeMu while aborting rounds, so cr.mu must never wait on routeMu.
	r.routeMu.Lock()
	rep := r.replicaSlot[slot]
	serving := r.routeSlot[slot]
	r.routeMu.Unlock()
	cr.mu.Lock()
	if m.Ckpt != cr.id || !cr.ackNeed[slot] {
		cr.mu.Unlock()
		return
	}
	delete(cr.ackNeed, slot)
	// Install on the replica — unless the replica is the very link hosting
	// the slot (post-failover), or it is gone.
	if rep < 0 || rep == serving || !r.links[rep].alive.Load() {
		cr.finishLocked()
		cr.mu.Unlock()
		return
	}
	snap := server.Msg{
		Kind:   server.KindSnap,
		Shard:  m.Shard,
		Ckpt:   m.Ckpt,
		Closes: m.Closes,
		Data:   m.Data,
	}
	line, err := server.EncodeLine(snap)
	if err != nil {
		r.encodeErrs.Add(1)
		cr.finishLocked()
		cr.mu.Unlock()
		return
	}
	cr.snapNeed[slot] = true
	cr.mu.Unlock()
	if err := r.links[rep].sendq.Put(r.ctx, line); err != nil {
		cr.mu.Lock()
		delete(cr.snapNeed, slot)
		cr.finishLocked()
		cr.mu.Unlock()
	}
}

// onSnapAck records a confirmed install: from here on, a promotion of this
// slot names this checkpoint.
func (r *Router) onSnapAck(m server.Msg) {
	cr := r.round.Load()
	if cr == nil || m.Shard == nil {
		return
	}
	slot := *m.Shard
	cr.mu.Lock()
	if m.Ckpt == cr.id && cr.snapNeed[slot] {
		delete(cr.snapNeed, slot)
		r.lastSnap[slot].Store(m.Ckpt)
		cr.finishLocked()
	}
	cr.mu.Unlock()
}

// failRound aborts an in-flight round when a worker dies: acks still
// outstanding may never come (the dead link's, or a just-redirected
// slot's), so the round fails fast instead of stalling to the timeout. The
// next round covers the new topology; lastSnap keeps only acked installs.
func (r *Router) failRound(l *link) {
	cr := r.round.Load()
	if cr == nil {
		return
	}
	cr.mu.Lock()
	if len(cr.ackNeed)+len(cr.snapNeed) > 0 {
		cr.err = fmt.Errorf("worker %d died mid-checkpoint", l.slot)
		cr.ackNeed = map[int]bool{}
		cr.snapNeed = map[int]bool{}
	}
	cr.finishLocked()
	cr.mu.Unlock()
}
