package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/server"
)

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// MemberStatsz is one ring member's row.
type MemberStatsz struct {
	ID     string  `json:"id"`
	Slot   int     `json:"slot"`
	Weight int     `json:"weight"`
	Share  float64 `json:"share"`
}

// SlotStatsz is one logical slot's serving row.
type SlotStatsz struct {
	Slot int `json:"slot"`
	// Owner / Replica are link indices into the workers array (-1: none).
	Owner    int  `json:"owner"`
	Replica  int  `json:"replica"`
	Degraded bool `json:"degraded"`
}

// RingStatsz is the /statsz ring section. Version counts placement
// membership changes (joins, leaves, deaths); MovedRanges and MovedSlots
// describe the last rebalance; Slots maps every logical slot to the link
// serving it.
type RingStatsz struct {
	Version     uint64         `json:"version"`
	Vnodes      int            `json:"vnodes"`
	Rebalances  uint64         `json:"rebalances"`
	MovedRanges uint64         `json:"moved_ranges"`
	MovedSlots  []int          `json:"moved_slots,omitempty"`
	Slots       []SlotStatsz   `json:"slots,omitempty"`
	Members     []MemberStatsz `json:"members"`
}

// WorkerStatsz is one worker link's row.
type WorkerStatsz struct {
	// Slot is the worker's home slot from its join (-1: a mid-stream
	// joiner with no home slot).
	Slot int `json:"slot"`
	// Member is the host's placement-ring id (empty once it left the ring).
	Member string `json:"member,omitempty"`
	Addr   string `json:"addr"`
	Alive  bool   `json:"alive"`
	// LastSeenMS is how long ago the last line arrived from this worker
	// (pong or any traffic), in milliseconds; -1 before first contact.
	LastSeenMS int64 `json:"last_seen_ms"`
	// Proto is the link's wire protocol ("json" or "bin", Config.Proto).
	Proto string `json:"proto"`
	// Version is the ring version the worker last echoed on pong.
	Version    uint64            `json:"version"`
	Routed     uint64            `json:"routed"`
	Replicated uint64            `json:"replicated"`
	SendQueue  server.QueueStats `json:"send_queue"`
	// ServesSlots lists the logical slots this link currently serves
	// (normally its own; more after failovers promoted it).
	ServesSlots []int `json:"serves_slots,omitempty"`
}

// Statsz is the router's /statsz report.
type Statsz struct {
	UptimeS      float64        `json:"uptime_s"`
	Epoch        int            `json:"epoch"`
	Ingested     uint64         `json:"ingested"`
	IngestErrors uint64         `json:"ingest_errors"`
	EncodeErrors uint64         `json:"encode_errors"`
	WorkerErrors uint64         `json:"worker_errors"`
	Alerts       uint64         `json:"alerts"`
	TuplesPerS   float64        `json:"tuples_per_s"`
	Subscribers  int            `json:"subscribers"`
	SubDropped   uint64         `json:"sub_dropped"`
	Replicas     int            `json:"replicas"`
	Failovers    uint64         `json:"failovers"`
	Degraded     bool           `json:"degraded"`
	Checkpoints  uint64         `json:"checkpoints"`
	CkptErrors   uint64         `json:"ckpt_errors"`
	Ring         RingStatsz     `json:"ring"`
	Workers      []WorkerStatsz `json:"workers"`
	// Closes is the per-slot count of window closes merged this epoch.
	Closes []uint64 `json:"closes,omitempty"`
	// Conns reports per-client-connection wire counters (negotiated
	// protocol, lines/frames in, bytes both ways).
	Conns []server.ConnStatsz `json:"conns,omitempty"`
}

// Stats snapshots the router for monitoring.
func (r *Router) Stats() Statsz {
	up := time.Since(r.start).Seconds()
	st := Statsz{
		UptimeS:      up,
		Ingested:     r.ingested.Load(),
		IngestErrors: r.ingestErrs.Load(),
		EncodeErrors: r.encodeErrs.Load(),
		WorkerErrors: r.workerErrs.Load(),
		Alerts:       r.alerts.Load(),
		Subscribers:  r.hub.Count(),
		SubDropped:   r.hub.Dropped(),
		Replicas:     r.cfg.Replicas,
		Failovers:    r.failovers.Load(),
		Degraded:     r.degraded.Load(),
		Checkpoints:  r.ckptN.Load(),
		CkptErrors:   r.ckptErrs.Load(),
	}
	if up > 0 {
		st.TuplesPerS = float64(st.Ingested) / up
	}
	st.Ring = RingStatsz{
		Version:     r.placeVer.Load(),
		Vnodes:      r.ring.Vnodes(),
		Rebalances:  r.rebalances.Load(),
		MovedRanges: r.movedRanges.Load(),
	}
	spread := r.ring.Spread()
	for _, m := range r.ring.Members() {
		st.Ring.Members = append(st.Ring.Members, MemberStatsz{
			ID:     m.ID,
			Slot:   r.slotOf[m.ID],
			Weight: m.Weight,
			Share:  spread[m.ID],
		})
	}
	r.routeMu.Lock()
	st.Ring.MovedSlots = append([]int(nil), r.lastMoved...)
	serves := make(map[int][]int, len(r.links))
	for slot, li := range r.routeSlot {
		if li >= 0 {
			serves[li] = append(serves[li], slot)
		}
		st.Ring.Slots = append(st.Ring.Slots, SlotStatsz{
			Slot:     slot,
			Owner:    li,
			Replica:  r.replicaSlot[slot],
			Degraded: li < 0,
		})
	}
	// Snapshot the link slice under the lock: joins append to it.
	links := append([]*link(nil), r.links...)
	members := make([]string, len(links))
	for i, l := range links {
		members[i] = l.member
	}
	r.routeMu.Unlock()
	linkProto := "json"
	if r.bin {
		linkProto = "bin"
	}
	now := time.Now().UnixMilli()
	for i, l := range links {
		row := WorkerStatsz{
			Slot:        l.slot,
			Member:      members[i],
			Addr:        l.addr,
			Alive:       l.alive.Load(),
			LastSeenMS:  -1,
			Proto:       linkProto,
			Version:     l.version.Load(),
			Routed:      l.routed.Load(),
			Replicated:  l.replicated.Load(),
			SendQueue:   l.sendq.Stats(),
			ServesSlots: serves[i],
		}
		if seen := l.lastSeen.Load(); seen > 0 {
			row.LastSeenMS = now - seen
		}
		st.Workers = append(st.Workers, row)
	}
	r.headMu.Lock()
	if r.ep != nil {
		st.Epoch = r.ep.n
		st.Closes = append([]uint64(nil), r.ep.closes...)
	}
	r.headMu.Unlock()
	r.mu.Lock()
	for c := range r.conns {
		st.Conns = append(st.Conns, c.Statsz())
	}
	r.mu.Unlock()
	sort.Slice(st.Conns, func(i, j int) bool { return st.Conns[i].Remote < st.Conns[j].Remote })
	return st
}

func (r *Router) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.Stats())
}
