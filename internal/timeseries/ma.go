package timeseries

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// MA is a moving-average model of order q:
//
//	X_t = C + e_t + b_1 e_{t-1} + ... + b_q e_{t-q},  e_t ~ N(0, Sigma²).
//
// §4.4 models short radar pulse sequences as pure MA ("due to frequent
// sampling, a short sequence of data tends to describe the same phenomena,
// hence obviating the need of autoregression, but with correlated noise
// factors").
type MA struct {
	C     float64
	Theta []float64 // b_1..b_q
	Sigma float64   // innovation standard deviation
}

// Q returns the model order.
func (m MA) Q() int { return len(m.Theta) }

// Mean returns C.
func (m MA) Mean() float64 { return m.C }

// Variance returns γ(0) = σ²(1 + Σ b_j²).
func (m MA) Variance() float64 {
	s := 1.0
	for _, b := range m.Theta {
		s += b * b
	}
	return m.Sigma * m.Sigma * s
}

// Autocovariance returns γ(k) in closed form (0 beyond lag q).
func (m MA) Autocovariance(k int) float64 {
	if k < 0 {
		k = -k
	}
	if k > len(m.Theta) {
		return 0
	}
	// γ(k) = σ² Σ_j b_j b_{j+k} with b_0 = 1.
	b := make([]float64, len(m.Theta)+1)
	b[0] = 1
	copy(b[1:], m.Theta)
	var s float64
	for j := 0; j+k < len(b); j++ {
		s += b[j] * b[j+k]
	}
	return m.Sigma * m.Sigma * s
}

// LongRunVariance returns σ²_LR = Σ_k γ(k) over all lags = σ²(1 + Σ b_j)².
// The variance of the sample mean of n observations is asymptotically
// σ²_LR / n — the quantity the radar T operator attaches to averaged
// moment data.
func (m MA) LongRunVariance() float64 {
	s := 1.0
	for _, b := range m.Theta {
		s += b
	}
	return m.Sigma * m.Sigma * s * s
}

// Simulate generates n observations (with a q-step warm-up discarded).
func (m MA) Simulate(n int, g *rng.RNG) []float64 {
	q := len(m.Theta)
	es := make([]float64, n+q)
	for i := range es {
		es[i] = g.Normal(0, m.Sigma)
	}
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		v := m.C + es[t+q]
		for j, b := range m.Theta {
			v += b * es[t+q-1-j]
		}
		out[t] = v
	}
	return out
}

// String implements fmt.Stringer.
func (m MA) String() string {
	return fmt.Sprintf("MA(%d){C=%.3g, θ=%v, σ=%.3g}", m.Q(), m.C, m.Theta, m.Sigma)
}

// FitMA estimates an MA(q) model from data with the innovations algorithm
// (Brockwell & Davis [5], §8.3), which needs only the sample
// autocovariances — no likelihood iterations — making it cheap enough for
// per-voxel stream fitting.
func FitMA(xs []float64, q int) (MA, error) {
	if q < 0 {
		return MA{}, fmt.Errorf("timeseries: negative MA order %d", q)
	}
	if len(xs) < 2*(q+1) {
		return MA{}, fmt.Errorf("timeseries: %d observations too few for MA(%d)", len(xs), q)
	}
	mu := Mean(xs)
	if q == 0 {
		acov := ACovF(xs, 0)
		return MA{C: mu, Sigma: math.Sqrt(math.Max(acov[0], 1e-300))}, nil
	}
	// Innovations algorithm up to step m >> q for convergence.
	m := q * 8
	if m > len(xs)-1 {
		m = len(xs) - 1
	}
	gamma := ACovF(xs, m)
	theta := make([][]float64, m+1) // theta[n][j] = θ_{n,j}, j = 1..n
	v := make([]float64, m+1)
	v[0] = gamma[0]
	if v[0] <= 0 {
		return MA{C: mu, Sigma: 1e-12}, nil
	}
	for n := 1; n <= m; n++ {
		theta[n] = make([]float64, n+1)
		for k := 0; k < n; k++ {
			s := gamma[n-k]
			for j := 0; j < k; j++ {
				s -= theta[k][k-j] * theta[n][n-j] * v[j]
			}
			theta[n][n-k] = s / v[k]
		}
		v[n] = gamma[0]
		for j := 0; j < n; j++ {
			v[n] -= theta[n][n-j] * theta[n][n-j] * v[j]
		}
		if v[n] <= 0 {
			v[n] = 1e-12
		}
	}
	coef := make([]float64, q)
	copy(coef, theta[m][1:q+1])
	return MA{C: mu, Theta: coef, Sigma: math.Sqrt(v[m])}, nil
}

// FitMAAuto identifies the order with IdentifyMA and fits it; falls back to
// MA(0) (white noise) when no cutoff is found inside maxLag.
func FitMAAuto(xs []float64, maxLag int) (MA, int, error) {
	q, ok := IdentifyMA(xs, maxLag, 0)
	if !ok {
		q = maxLag
	}
	model, err := FitMA(xs, q)
	return model, q, err
}
