package timeseries

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestACFWhiteNoise(t *testing.T) {
	g := rng.New(1)
	xs := WhiteNoise(20000, 1, g)
	rho := ACF(xs, 10)
	if rho[0] != 1 {
		t.Errorf("rho(0) = %g", rho[0])
	}
	for k := 1; k <= 10; k++ {
		if math.Abs(rho[k]) > 0.03 {
			t.Errorf("white noise rho(%d) = %g", k, rho[k])
		}
	}
}

func TestACFConstantSeries(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	rho := ACF(xs, 2)
	if rho[0] != 1 || rho[1] != 0 {
		t.Errorf("constant series ACF = %v", rho)
	}
}

func TestMAAutocovarianceClosedForm(t *testing.T) {
	m := MA{C: 0, Theta: []float64{0.5, 0.25}, Sigma: 2}
	// γ(0) = 4(1 + 0.25 + 0.0625) = 5.25
	if got := m.Autocovariance(0); math.Abs(got-5.25) > 1e-12 {
		t.Errorf("γ(0) = %g", got)
	}
	// γ(1) = 4(0.5 + 0.5·0.25) = 2.5
	if got := m.Autocovariance(1); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("γ(1) = %g", got)
	}
	// γ(2) = 4·0.25 = 1
	if got := m.Autocovariance(2); math.Abs(got-1) > 1e-12 {
		t.Errorf("γ(2) = %g", got)
	}
	if m.Autocovariance(3) != 0 {
		t.Error("γ(3) should be 0 for MA(2)")
	}
	if got := m.Autocovariance(-1); math.Abs(got-2.5) > 1e-12 {
		t.Error("autocovariance must be symmetric in lag")
	}
}

func TestMASimulatedACFMatchesTheory(t *testing.T) {
	g := rng.New(2)
	m := MA{C: 10, Theta: []float64{0.8}, Sigma: 1}
	xs := m.Simulate(100000, g)
	gamma := ACovF(xs, 3)
	if math.Abs(Mean(xs)-10) > 0.02 {
		t.Errorf("mean = %g", Mean(xs))
	}
	if math.Abs(gamma[0]-m.Autocovariance(0)) > 0.05 {
		t.Errorf("γ̂(0) = %g, want %g", gamma[0], m.Autocovariance(0))
	}
	if math.Abs(gamma[1]-m.Autocovariance(1)) > 0.05 {
		t.Errorf("γ̂(1) = %g, want %g", gamma[1], m.Autocovariance(1))
	}
	if math.Abs(gamma[2]) > 0.05 {
		t.Errorf("γ̂(2) = %g, want ~0", gamma[2])
	}
}

func TestIdentifyMAOrders(t *testing.T) {
	g := rng.New(3)
	for wantQ := 0; wantQ <= 3; wantQ++ {
		theta := make([]float64, wantQ)
		for i := range theta {
			theta[i] = 0.7 / float64(i+1)
		}
		m := MA{Theta: theta, Sigma: 1}
		xs := m.Simulate(50000, g)
		q, ok := IdentifyMA(xs, 12, 0)
		if !ok {
			t.Errorf("MA(%d): no cutoff found", wantQ)
			continue
		}
		if q != wantQ {
			t.Errorf("MA(%d) identified as MA(%d)", wantQ, q)
		}
	}
}

func TestFitMARecoverCoefficients(t *testing.T) {
	g := rng.New(4)
	truth := MA{C: 5, Theta: []float64{0.6, 0.3}, Sigma: 1.5}
	xs := truth.Simulate(200000, g)
	fit, err := FitMA(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.C-5) > 0.05 {
		t.Errorf("C = %g", fit.C)
	}
	if math.Abs(fit.Theta[0]-0.6) > 0.05 || math.Abs(fit.Theta[1]-0.3) > 0.05 {
		t.Errorf("θ = %v, want [0.6 0.3]", fit.Theta)
	}
	if math.Abs(fit.Sigma-1.5) > 0.05 {
		t.Errorf("σ = %g", fit.Sigma)
	}
}

func TestFitMAErrors(t *testing.T) {
	if _, err := FitMA([]float64{1, 2}, -1); err == nil {
		t.Error("negative order should error")
	}
	if _, err := FitMA([]float64{1, 2, 3}, 5); err == nil {
		t.Error("too-short series should error")
	}
}

func TestFitMAAutoWhiteNoise(t *testing.T) {
	g := rng.New(5)
	xs := WhiteNoise(20000, 2, g)
	m, q, err := FitMAAuto(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 {
		t.Errorf("white noise identified as MA(%d)", q)
	}
	if math.Abs(m.Sigma-2) > 0.05 {
		t.Errorf("σ = %g", m.Sigma)
	}
}

func TestFitARYuleWalker(t *testing.T) {
	g := rng.New(6)
	truth := AR{C: 2, Phi: []float64{0.5, -0.3}, Sigma: 1}
	xs := truth.Simulate(200000, g)
	fit, err := FitAR(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Phi[0]-0.5) > 0.02 || math.Abs(fit.Phi[1]+0.3) > 0.02 {
		t.Errorf("φ = %v, want [0.5 -0.3]", fit.Phi)
	}
	if math.Abs(fit.Mean()-truth.Mean()) > 0.05 {
		t.Errorf("mean = %g, want %g", fit.Mean(), truth.Mean())
	}
	if math.Abs(fit.Sigma-1) > 0.05 {
		t.Errorf("σ = %g", fit.Sigma)
	}
}

func TestPACFCutsOffForAR(t *testing.T) {
	g := rng.New(7)
	truth := AR{Phi: []float64{0.7}, Sigma: 1}
	xs := truth.Simulate(100000, g)
	pacf := PACF(xs, 5)
	if math.Abs(pacf[0]-0.7) > 0.03 {
		t.Errorf("PACF(1) = %g, want 0.7", pacf[0])
	}
	for k := 1; k < len(pacf); k++ {
		if math.Abs(pacf[k]) > 0.03 {
			t.Errorf("PACF(%d) = %g, want ~0", k+1, pacf[k])
		}
	}
}

func TestLjungBox(t *testing.T) {
	g := rng.New(8)
	white := WhiteNoise(5000, 1, g)
	if _, ok := LjungBox(white, 10); !ok {
		t.Error("white noise rejected by Ljung-Box")
	}
	corr := MA{Theta: []float64{0.9}, Sigma: 1}.Simulate(5000, g)
	if _, ok := LjungBox(corr, 10); ok {
		t.Error("MA(1) accepted as white by Ljung-Box")
	}
}

func TestMeanCLTCoverage(t *testing.T) {
	// Simulate many MA(1) series; the CLT interval should cover the true
	// mean at roughly the nominal rate.
	g := rng.New(9)
	truth := MA{C: 3, Theta: []float64{0.7}, Sigma: 1}
	n := 2000
	trials := 300
	covered := 0
	for i := 0; i < trials; i++ {
		xs := truth.Simulate(n, g)
		d := MeanCLT(xs, 1)
		lo, hi := d.Quantile(0.025), d.Quantile(0.975)
		if lo <= 3 && 3 <= hi {
			covered++
		}
	}
	rate := float64(covered) / float64(trials)
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("CLT coverage = %g, want ~0.95", rate)
	}
}

func TestMeanCLTIgnoringCorrelationUndercovers(t *testing.T) {
	// The whole point of §4.4: treating positively correlated samples as
	// independent understates the variance of the average. The q=0 interval
	// must be narrower than the q=1 interval for MA(1) data.
	g := rng.New(10)
	xs := MA{C: 0, Theta: []float64{0.9}, Sigma: 1}.Simulate(5000, g)
	iid := MeanCLT(xs, 0)
	corr := MeanCLT(xs, 1)
	if iid.Sigma >= corr.Sigma {
		t.Errorf("iid σ %g should be < MA-aware σ %g", iid.Sigma, corr.Sigma)
	}
	ratio := corr.Variance() / iid.Variance()
	// Theory: (γ0+2γ1)/γ0 = (1+θ²+2θ)/(1+θ²) ≈ 1.99 for θ=0.9.
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("variance inflation = %g, want ~2", ratio)
	}
}

func TestModelMeanDistExactSmallN(t *testing.T) {
	// Monte Carlo check of the exact finite-n mean distribution.
	g := rng.New(11)
	m := MA{C: 1, Theta: []float64{0.5}, Sigma: 1}
	n := 10
	want := ModelMeanDist(m, n)
	trials := 200000
	var s, s2 float64
	for i := 0; i < trials; i++ {
		xs := m.Simulate(n, g)
		mu := Mean(xs)
		s += mu
		s2 += mu * mu
	}
	mcMean := s / float64(trials)
	mcVar := s2/float64(trials) - mcMean*mcMean
	if math.Abs(mcMean-want.Mu) > 0.01 {
		t.Errorf("MC mean %g vs model %g", mcMean, want.Mu)
	}
	if math.Abs(mcVar-want.Variance()) > 0.01*want.Variance()+0.002 {
		t.Errorf("MC var %g vs model %g", mcVar, want.Variance())
	}
}

func TestSumCLTScaling(t *testing.T) {
	g := rng.New(12)
	xs := WhiteNoise(1000, 1, g)
	mean := MeanCLT(xs, 0)
	sum := SumCLT(xs, 0)
	if math.Abs(sum.Mu-1000*mean.Mu) > 1e-9 {
		t.Error("sum mean should be n × mean")
	}
	if math.Abs(sum.Sigma-1000*mean.Sigma) > 1e-9 {
		t.Error("sum σ should be n × mean σ")
	}
}

func TestARMASimulateStationary(t *testing.T) {
	g := rng.New(13)
	m := ARMA{C: 1, Phi: []float64{0.5}, Theta: []float64{0.3}, Sigma: 1}
	xs := m.Simulate(50000, g)
	// Stationary mean = C / (1 - φ) = 2.
	if math.Abs(Mean(xs)-2) > 0.05 {
		t.Errorf("ARMA mean = %g, want 2", Mean(xs))
	}
}
