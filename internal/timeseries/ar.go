package timeseries

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// AR is an autoregressive model of order p:
//
//	X_t = C + a_1 X_{t-1} + ... + a_p X_{t-p} + e_t,  e_t ~ N(0, Sigma²).
type AR struct {
	C     float64
	Phi   []float64
	Sigma float64
}

// P returns the model order.
func (a AR) P() int { return len(a.Phi) }

// Mean returns the stationary mean C / (1 - Σ a_i).
func (a AR) Mean() float64 {
	s := 1.0
	for _, p := range a.Phi {
		s -= p
	}
	if s == 0 {
		return math.Inf(1)
	}
	return a.C / s
}

// Simulate generates n observations after a warm-up long enough to forget
// the zero initial state.
func (a AR) Simulate(n int, g *rng.RNG) []float64 {
	p := len(a.Phi)
	warm := 50 + 10*p
	buf := make([]float64, n+warm)
	for t := 0; t < len(buf); t++ {
		v := a.C + g.Normal(0, a.Sigma)
		for j, phi := range a.Phi {
			if t-1-j >= 0 {
				v += phi * buf[t-1-j]
			}
		}
		buf[t] = v
	}
	return buf[warm:]
}

// String implements fmt.Stringer.
func (a AR) String() string {
	return fmt.Sprintf("AR(%d){C=%.3g, φ=%v, σ=%.3g}", a.P(), a.C, a.Phi, a.Sigma)
}

// FitAR estimates AR(p) coefficients with the Yule-Walker equations solved
// by Levinson-Durbin recursion — O(p²) on the sample autocovariances.
func FitAR(xs []float64, p int) (AR, error) {
	if p < 0 {
		return AR{}, fmt.Errorf("timeseries: negative AR order %d", p)
	}
	if len(xs) < 2*(p+1) {
		return AR{}, fmt.Errorf("timeseries: %d observations too few for AR(%d)", len(xs), p)
	}
	mu := Mean(xs)
	gamma := ACovF(xs, p)
	if p == 0 {
		return AR{C: mu, Sigma: math.Sqrt(math.Max(gamma[0], 1e-300))}, nil
	}
	phi, v := levinsonDurbin(gamma)
	s := 1.0
	for _, c := range phi {
		s -= c
	}
	return AR{C: mu * s, Phi: phi, Sigma: math.Sqrt(math.Max(v, 1e-300))}, nil
}

// levinsonDurbin solves the Yule-Walker system for the autocovariances
// gamma[0..p], returning the coefficients and innovation variance.
func levinsonDurbin(gamma []float64) (phi []float64, v float64) {
	p := len(gamma) - 1
	phi = make([]float64, p)
	prev := make([]float64, p)
	v = gamma[0]
	for k := 1; k <= p; k++ {
		acc := gamma[k]
		for j := 1; j < k; j++ {
			acc -= prev[j-1] * gamma[k-j]
		}
		var kappa float64
		if v > 0 {
			kappa = acc / v
		}
		phi[k-1] = kappa
		for j := 1; j < k; j++ {
			phi[j-1] = prev[j-1] - kappa*prev[k-1-j]
		}
		v *= 1 - kappa*kappa
		copy(prev, phi[:k])
	}
	return phi, v
}

// PACF returns the partial autocorrelation function at lags 1..maxLag via
// Levinson-Durbin (the k-th value is the last coefficient of the AR(k) fit).
func PACF(xs []float64, maxLag int) []float64 {
	gamma := ACovF(xs, maxLag)
	if len(gamma) < 2 {
		return nil
	}
	out := make([]float64, 0, maxLag)
	for k := 1; k <= maxLag && k < len(gamma); k++ {
		phi, _ := levinsonDurbin(gamma[:k+1])
		out = append(out, phi[k-1])
	}
	return out
}

// ARMA couples an AR and MA part for simulation-side workloads (the radar
// noise generator); fitting in the stream path stays MA-only per §4.4.
type ARMA struct {
	C     float64
	Phi   []float64
	Theta []float64
	Sigma float64
}

// Simulate generates n observations with warm-up.
func (m ARMA) Simulate(n int, g *rng.RNG) []float64 {
	p, q := len(m.Phi), len(m.Theta)
	warm := 100 + 10*(p+q)
	es := make([]float64, n+warm)
	for i := range es {
		es[i] = g.Normal(0, m.Sigma)
	}
	buf := make([]float64, n+warm)
	for t := 0; t < len(buf); t++ {
		v := m.C + es[t]
		for j, b := range m.Theta {
			if t-1-j >= 0 {
				v += b * es[t-1-j]
			}
		}
		for j, a := range m.Phi {
			if t-1-j >= 0 {
				v += a * buf[t-1-j]
			}
		}
		buf[t] = v
	}
	return buf[warm:]
}
