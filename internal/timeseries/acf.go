// Package timeseries implements the time-series modeling layer of §4.4: the
// radar T operator characterizes moment-data uncertainty with moving-average
// (MA) models identified from k-lag autocorrelations computable in at most
// two scans, then uses the Central Limit Theorem for MA processes to price
// the uncertainty of temporal averages without fitting full ARMA models.
package timeseries

import (
	"math"

	"repro/internal/rng"
)

// Mean returns the sample mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ACovF returns the sample autocovariances γ̂(0..maxLag) of xs using the
// standard 1/n normalization (which keeps the sequence positive
// semi-definite). Two passes over the data: one for the mean, one for all
// lags — the "at most two scans" §4.4 requires at stream rates.
func ACovF(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	mu := Mean(xs)
	out := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		var s float64
		for t := 0; t+k < n; t++ {
			s += (xs[t] - mu) * (xs[t+k] - mu)
		}
		out[k] = s / float64(n)
	}
	return out
}

// ACF returns the sample autocorrelations ρ̂(0..maxLag); ρ̂(0) = 1.
// A constant series (zero variance) yields zeros beyond lag 0.
func ACF(xs []float64, maxLag int) []float64 {
	acov := ACovF(xs, maxLag)
	if len(acov) == 0 {
		return nil
	}
	out := make([]float64, len(acov))
	if acov[0] <= 0 {
		out[0] = 1
		return out
	}
	for k, g := range acov {
		out[k] = g / acov[0]
	}
	return out
}

// IdentifyMA estimates the MA order as the largest lag whose sample
// autocorrelation exceeds its Bartlett band,
//
//	|ρ̂(k)| > z * sqrt((1 + 2 Σ_{j<k} ρ̂(j)²) / n),
//
// the classical ACF cutoff identification (§4.4: "sequences obeying the MA
// assumption can be identified by computing their k-lag autocorrelations").
// The default z = 3.29 (99.9% point) keeps the family-wise false-positive
// rate across maxLag simultaneous lag tests low; genuine MA signal clears
// the band comfortably at stream sample sizes. ok is false when the largest
// checked lag is itself significant, i.e. no cutoff is visible within
// maxLag.
func IdentifyMA(xs []float64, maxLag int, z float64) (q int, ok bool) {
	if z <= 0 {
		z = 3.29
	}
	rho := ACF(xs, maxLag)
	if len(rho) == 0 {
		return 0, false
	}
	n := float64(len(xs))
	q = 0
	var cum float64 // Σ_{j<k} ρ̂(j)² for the running band
	for k := 1; k < len(rho); k++ {
		band := z * math.Sqrt((1+2*cum)/n)
		if math.Abs(rho[k]) > band {
			q = k
		}
		cum += rho[k] * rho[k]
	}
	return q, q < maxLag
}

// LjungBox returns the Ljung-Box portmanteau statistic over lags 1..h and a
// boolean whiteness verdict at the 5% level (χ²_h critical values
// approximated by the Wilson-Hilferty transform). Large values reject
// whiteness.
func LjungBox(xs []float64, h int) (stat float64, white bool) {
	n := float64(len(xs))
	rho := ACF(xs, h)
	if len(rho) == 0 {
		return 0, true
	}
	for k := 1; k < len(rho); k++ {
		stat += rho[k] * rho[k] / (n - float64(k))
	}
	stat *= n * (n + 2)
	// Wilson-Hilferty: χ²_h 95th percentile ≈ h (1 − 2/(9h) + 1.645 sqrt(2/(9h)))³.
	hh := float64(h)
	crit := hh * math.Pow(1-2/(9*hh)+1.6448536269514722*math.Sqrt(2/(9*hh)), 3)
	return stat, stat <= crit
}

// WhiteNoise generates n i.i.d. N(0, sigma²) innovations.
func WhiteNoise(n int, sigma float64, g *rng.RNG) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Normal(0, sigma)
	}
	return out
}
