package timeseries

import (
	"math"

	"repro/internal/dist"
)

// MeanCLT returns the asymptotic Gaussian distribution of the sample mean of
// an MA(q) series per the Central Limit Theorem for time series (§5.1,
// Brockwell & Davis): for a series of length n,
//
//	x̄ ≈ N( μ, σ²_LR / n ),  σ²_LR = γ(0) + 2 Σ_{k=1..q} γ(k),
//
// with the mean and autocovariances estimated from the sample itself. This
// is how the radar T operator attaches uncertainty to averaged moment data
// without fitting a full model: one mean scan plus one ACF scan.
func MeanCLT(xs []float64, q int) dist.Normal {
	n := len(xs)
	if n == 0 {
		return dist.NewNormal(0, 1e-9)
	}
	if q >= n {
		q = n - 1
	}
	gamma := ACovF(xs, q)
	lr := gamma[0]
	for k := 1; k < len(gamma); k++ {
		lr += 2 * gamma[k]
	}
	if lr <= 0 {
		// Strongly negatively correlated samples can push the truncated
		// long-run variance estimate below zero; floor at the white-noise
		// variance scaled down (the estimate is noisy, not the process).
		lr = math.Max(gamma[0]*0.01, 1e-18)
	}
	return dist.NewNormal(Mean(xs), math.Sqrt(lr/float64(n)))
}

// MeanCLTAuto identifies the MA order from the data (Bartlett cutoff) and
// applies MeanCLT with it. Returns the distribution and the order used.
func MeanCLTAuto(xs []float64, maxLag int) (dist.Normal, int) {
	q, ok := IdentifyMA(xs, maxLag, 0)
	if !ok {
		q = maxLag
	}
	return MeanCLT(xs, q), q
}

// SumCLT returns the asymptotic distribution of the *sum* of the series
// (mean scaled by n): N(n μ, n σ²_LR).
func SumCLT(xs []float64, q int) dist.Normal {
	m := MeanCLT(xs, q)
	n := float64(len(xs))
	return m.ScaleShift(n, 0)
}

// ModelMeanDist returns the exact finite-n distribution of the sample mean
// under a known MA model: Gaussian with mean C and variance
// (1/n²) Σ_{s,t} γ(s−t) computed from the model autocovariances.
func ModelMeanDist(m MA, n int) dist.Normal {
	if n <= 0 {
		return dist.NewNormal(m.C, 1e-9)
	}
	q := m.Q()
	var v float64
	// Σ_{s,t} γ(s−t) = n γ(0) + 2 Σ_{k=1..min(q,n−1)} (n−k) γ(k).
	v = float64(n) * m.Autocovariance(0)
	for k := 1; k <= q && k < n; k++ {
		v += 2 * float64(n-k) * m.Autocovariance(k)
	}
	v /= float64(n) * float64(n)
	if v <= 0 {
		v = 1e-18
	}
	return dist.NewNormal(m.C, math.Sqrt(v))
}
