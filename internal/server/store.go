package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Store persists one checkpoint blob per stream epoch. Put must be atomic:
// a reader (recovery after a crash, possibly mid-Put) must see either the
// previous complete checkpoint or the new complete checkpoint, never a
// torn mix — the engine checkpoints while the process can die at any
// instruction.
type Store interface {
	// Put durably replaces epoch's checkpoint.
	Put(epoch int, data []byte) error
	// Get reads epoch's checkpoint.
	Get(epoch int) ([]byte, error)
	// List returns the epochs with a checkpoint on disk, ascending.
	List() ([]int, error)
	// Delete removes epoch's checkpoint (the stream completed; recovery
	// must not resurrect it). Deleting a missing epoch is a no-op.
	Delete(epoch int) error
}

// FileStore is the single-file-per-epoch Store: dir/epoch-<n>.ckpt,
// replaced via the write-temp, fsync, rename, fsync-dir protocol. Rename
// within one directory is atomic on POSIX filesystems, the file fsync
// makes the bytes durable before the name moves, and the directory fsync
// makes the name move itself durable — so a crash at any point leaves
// either the old complete file or the new complete file.
type FileStore struct {
	dir string
}

// NewFileStore opens (creating if needed) a checkpoint directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: checkpoint dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *FileStore) Dir() string { return s.dir }

func (s *FileStore) path(epoch int) string {
	return filepath.Join(s.dir, fmt.Sprintf("epoch-%d.ckpt", epoch))
}

// Put implements Store.
func (s *FileStore) Put(epoch int, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, fmt.Sprintf(".epoch-%d-*.tmp", epoch))
	if err != nil {
		return fmt.Errorf("server: checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("server: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("server: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(epoch)); err != nil {
		return fmt.Errorf("server: checkpoint rename: %w", err)
	}
	return s.syncDir()
}

// syncDir makes a completed rename (or delete) durable.
func (s *FileStore) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("server: checkpoint dir sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("server: checkpoint dir sync: %w", err)
	}
	return nil
}

// Get implements Store.
func (s *FileStore) Get(epoch int) ([]byte, error) {
	data, err := os.ReadFile(s.path(epoch))
	if err != nil {
		return nil, fmt.Errorf("server: checkpoint read: %w", err)
	}
	return data, nil
}

// List implements Store.
func (s *FileStore) List() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("server: checkpoint list: %w", err)
	}
	var epochs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "epoch-") || !strings.HasSuffix(name, ".ckpt") {
			continue // temp files, foreign files
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "epoch-"), ".ckpt"))
		if err != nil {
			continue
		}
		epochs = append(epochs, n)
	}
	sort.Ints(epochs)
	return epochs, nil
}

// Delete implements Store.
func (s *FileStore) Delete(epoch int) error {
	if err := os.Remove(s.path(epoch)); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("server: checkpoint delete: %w", err)
	}
	return s.syncDir()
}
