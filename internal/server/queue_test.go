package server

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stream"
)

// Drop-oldest accounting under concurrent producers: with P goroutines
// hammering a small queue while a consumer drains it, every accepted tuple
// must be either delivered or counted as dropped — no double counts, no
// losses. (The single-threaded form lives in server_test.go; this is the
// contended form the queue meets as the cluster router's per-worker send
// buffer.)
func TestQueueDropOldestConcurrentAccounting(t *testing.T) {
	const (
		producers = 8
		perProd   = 4000
		capacity  = 64
	)
	q := NewQueue(capacity, DropOldest)

	var delivered atomic.Uint64
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for range q.Tuples() {
			delivered.Add(1)
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if err := q.Put(context.Background(), stream.SourceTuple{}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	q.Close()
	<-consumerDone

	st := q.Stats()
	if st.Accepted != producers*perProd {
		t.Fatalf("accepted %d, want %d", st.Accepted, producers*perProd)
	}
	if st.Depth != 0 {
		t.Fatalf("depth %d after full drain", st.Depth)
	}
	if got := delivered.Load() + st.Dropped; got != st.Accepted {
		t.Fatalf("delivered %d + dropped %d = %d, want accepted %d",
			delivered.Load(), st.Dropped, got, st.Accepted)
	}
	if st.HighWater > capacity {
		t.Fatalf("high water %d exceeds capacity %d", st.HighWater, capacity)
	}
}

// The generic instantiation the router uses: byte-slice elements, block
// policy, accounting intact across close.
func TestQueueOfBytes(t *testing.T) {
	q := NewQueueOf[[]byte](4, Block)
	for i := 0; i < 4; i++ {
		if err := q.Put(context.Background(), []byte{byte(i)}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	q.Close()
	var got []byte
	for line := range q.Tuples() {
		got = append(got, line...)
	}
	if string(got) != "\x00\x01\x02\x03" {
		t.Fatalf("drained %q, want FIFO bytes", got)
	}
	if err := q.Put(context.Background(), []byte("late")); err != ErrQueueClosed {
		t.Fatalf("Put after close: %v, want ErrQueueClosed", err)
	}
	if st := q.Stats(); st.Accepted != 4 || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
}
