package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

// BenchmarkServerWire measures end-to-end wire throughput: tuples over
// localhost TCP, through decode, the bounded queue, the sharded live Q1
// plan, and the alert stream back to a subscriber. Each iteration replays
// the trace as one engine epoch (ingest, "end", drain, "done"). The
// proto dimension compares the JSON-lines protocol against the binary
// frame protocol on the same trace and plan; the tuples/s metric is the
// wire ingest rate CI tracks (json in BENCH_PR5.json, bin in
// BENCH_PR9.json).
func BenchmarkServerWire(b *testing.B) {
	for _, proto := range []string{"json", "bin"} {
		for _, shards := range []int{0, 2} {
			b.Run(fmt.Sprintf("proto=%s/shards=%d", proto, shards), func(b *testing.B) {
				msgs := wireTrace(b, 40, 300)
				// The full ingest stream is pre-encoded outside the timer
				// in both protocols: the benchmark measures the server's
				// receive path, not the client's encoder. Schema ids are
				// connection-scoped and the stream opens with its schema
				// frames, so the same bytes are valid on every fresh dial.
				var ingestBytes []byte
				if proto == "bin" {
					ingestBytes = encodeBinary(b, msgs)
				} else {
					var buf bytes.Buffer
					for _, m := range msgs {
						line, err := EncodeLine(m)
						if err != nil {
							b.Fatal(err)
						}
						buf.Write(line)
					}
					ingestBytes = buf.Bytes()
				}
				endLine, _ := EncodeLine(Msg{Kind: KindEnd})
				subLine, _ := EncodeLine(Msg{Kind: KindSub})

				cfg := testQ1Config(shards)
				s, err := New(Config{
					Addr:       "127.0.0.1:0",
					NewPlan:    Q1Plan(cfg),
					FlushEvery: 50 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()

				b.ReportAllocs()
				b.ResetTimer()
				start := time.Now()
				alerts := 0
				for i := 0; i < b.N; i++ {
					sub, err := net.Dial("tcp", s.Addr().String())
					if err != nil {
						b.Fatal(err)
					}
					subR := bufio.NewReader(sub)
					if _, err := sub.Write(subLine); err != nil {
						b.Fatal(err)
					}
					if _, err := subR.ReadBytes('\n'); err != nil { // ok
						b.Fatal(err)
					}
					ingest, err := net.Dial("tcp", s.Addr().String())
					if err != nil {
						b.Fatal(err)
					}
					w := bufio.NewWriterSize(ingest, 1<<16)
					if _, err := io.Copy(w, bytes.NewReader(ingestBytes)); err != nil {
						b.Fatal(err)
					}
					w.Write(endLine)
					if err := w.Flush(); err != nil {
						b.Fatal(err)
					}
					for {
						line, err := subR.ReadBytes('\n')
						if err != nil {
							b.Fatal(err)
						}
						var m Msg
						if err := json.Unmarshal(line, &m); err != nil {
							b.Fatal(err)
						}
						if m.Kind == KindDone {
							break
						}
						alerts++
					}
					sub.Close()
					ingest.Close()
				}
				elapsed := time.Since(start)
				b.ReportMetric(float64(len(msgs)*b.N)/elapsed.Seconds(), "tuples/s")
				b.ReportMetric(float64(alerts)/float64(b.N), "alerts/op")
			})
		}
	}
}

// BenchmarkBwireDecode isolates the binary receive path with no engine
// behind it: frame splitting plus DecodeTuples plus the UTuple lift over
// the pre-encoded trace — the per-tuple decode cost a connection pays,
// and the path the zero-allocs assertion (TestBwireDecodeAllocs) pins.
func BenchmarkBwireDecode(b *testing.B) {
	msgs := wireTrace(b, 40, 300)
	raw := encodeBinary(b, msgs)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	dec := NewBwDecoder()
	seenSchemas := false
	for i := 0; i < b.N; i++ {
		wr := NewWireReader(bytes.NewReader(raw), 0)
		for {
			_, fr, err := wr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			switch fr.Kind {
			case BwSchemaFrame:
				// The schema table persists across iterations (it is
				// connection state, and this is one logical connection
				// replaying the same stream), so only the first pass
				// registers.
				if !seenSchemas {
					if _, err := dec.AddSchema(fr.Payload); err != nil {
						b.Fatal(err)
					}
				}
			case BwTuples:
				bts, err := dec.DecodeTuples(fr.Payload)
				if err != nil {
					b.Fatal(err)
				}
				for j := range bts {
					if _, err := bts[j].UTuple(); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		seenSchemas = true
	}
	b.ReportMetric(float64(len(msgs)*b.N)/time.Since(start).Seconds(), "tuples/s")
}

// BenchmarkJSONParseTuple is BenchmarkBwireDecode's JSON counterpart:
// per-line Unmarshal plus ParseTuple over the same trace, for the
// decode-only comparison EXPERIMENTS.md tabulates.
func BenchmarkJSONParseTuple(b *testing.B) {
	msgs := wireTrace(b, 40, 300)
	var buf bytes.Buffer
	for _, m := range msgs {
		line, err := EncodeLine(m)
		if err != nil {
			b.Fatal(err)
		}
		buf.Write(line)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		wr := NewWireReader(bytes.NewReader(raw), 0)
		for {
			line, _, err := wr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			var m Msg
			if err := json.Unmarshal(line, &m); err != nil {
				b.Fatal(err)
			}
			if _, err := ParseTuple(m); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(msgs)*b.N)/time.Since(start).Seconds(), "tuples/s")
}
