package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"
)

// BenchmarkServerWire measures end-to-end wire throughput: JSON tuples over
// localhost TCP, through parse, the bounded queue, the sharded live Q1
// plan, and the alert stream back to a subscriber. Each iteration replays
// the trace as one engine epoch (ingest, "end", drain, "done"). The
// tuples/s metric is the wire ingest rate CI tracks in BENCH_PR5.json.
func BenchmarkServerWire(b *testing.B) {
	for _, shards := range []int{0, 2} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			msgs := wireTrace(b, 40, 300)
			lines := make([][]byte, len(msgs))
			for i, m := range msgs {
				line, err := EncodeLine(m)
				if err != nil {
					b.Fatal(err)
				}
				lines[i] = line
			}
			endLine, _ := EncodeLine(Msg{Kind: KindEnd})
			subLine, _ := EncodeLine(Msg{Kind: KindSub})

			cfg := testQ1Config(shards)
			s, err := New(Config{
				Addr:       "127.0.0.1:0",
				NewPlan:    Q1Plan(cfg),
				FlushEvery: 50 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()

			b.ResetTimer()
			start := time.Now()
			alerts := 0
			for i := 0; i < b.N; i++ {
				sub, err := net.Dial("tcp", s.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				subR := bufio.NewReader(sub)
				if _, err := sub.Write(subLine); err != nil {
					b.Fatal(err)
				}
				if _, err := subR.ReadBytes('\n'); err != nil { // ok
					b.Fatal(err)
				}
				ingest, err := net.Dial("tcp", s.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				w := bufio.NewWriterSize(ingest, 1<<16)
				for _, line := range lines {
					if _, err := w.Write(line); err != nil {
						b.Fatal(err)
					}
				}
				w.Write(endLine)
				if err := w.Flush(); err != nil {
					b.Fatal(err)
				}
				for {
					line, err := subR.ReadBytes('\n')
					if err != nil {
						b.Fatal(err)
					}
					var m Msg
					if err := json.Unmarshal(line, &m); err != nil {
						b.Fatal(err)
					}
					if m.Kind == KindDone {
						break
					}
					alerts++
				}
				sub.Close()
				ingest.Close()
			}
			elapsed := time.Since(start)
			b.ReportMetric(float64(len(lines)*b.N)/elapsed.Seconds(), "tuples/s")
			b.ReportMetric(float64(alerts)/float64(b.N), "alerts/op")
		})
	}
}
