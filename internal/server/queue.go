package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/stream"
)

// Policy selects what a full ingest queue does with new tuples.
type Policy int

const (
	// Block makes Put wait for space: backpressure propagates through the
	// blocked connection handler into TCP flow control, slowing the client.
	// Nothing is lost; ingest latency grows instead.
	Block Policy = iota
	// DropOldest evicts the oldest queued tuple to admit the new one:
	// bounded staleness for monitoring workloads where the latest readings
	// matter more than completeness. Drops are counted in Stats.
	DropOldest
)

// String renders the policy the way ParsePolicy reads it.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy reads a policy name ("block", "drop-oldest").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-oldest":
		return DropOldest, nil
	default:
		return Block, fmt.Errorf("unknown backpressure policy %q (want block or drop-oldest)", s)
	}
}

// ErrQueueClosed is returned by Put once the queue has been closed (the
// epoch is draining).
var ErrQueueClosed = errors.New("server: ingest queue closed (stream draining)")

// Queue is the bounded ingest queue between connection handlers and the
// continuously running plan: many producers Put; the engine consumes it as
// a stream.Source. Closing it ends the stream — RunLive drains everything
// accepted, then flushes the plan.
type Queue = QueueOf[stream.SourceTuple]

// QueueOf is the element-generic form of the bounded queue. The ingest
// path instantiates it with stream.SourceTuple; the cluster router uses
// QueueOf[[]byte] as each worker link's outbound line buffer, reusing the
// same policies and accounting.
type QueueOf[T any] struct {
	ch   chan T
	done chan struct{}

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup

	policy    Policy
	accepted  atomic.Uint64
	dropped   atomic.Uint64
	highWater atomic.Int64
}

// NewQueue creates a bounded ingest queue (capacity <= 0 selects 1024).
func NewQueue(capacity int, policy Policy) *Queue {
	return NewQueueOf[stream.SourceTuple](capacity, policy)
}

// NewQueueOf creates a bounded queue of any element type.
func NewQueueOf[T any](capacity int, policy Policy) *QueueOf[T] {
	if capacity <= 0 {
		capacity = 1024
	}
	return &QueueOf[T]{
		ch:     make(chan T, capacity),
		done:   make(chan struct{}),
		policy: policy,
	}
}

// Tuples implements stream.Source; RunLive consumes the queue directly.
func (q *QueueOf[T]) Tuples() <-chan T { return q.ch }

// Depth is the number of queued tuples not yet consumed by the engine.
func (q *QueueOf[T]) Depth() int { return len(q.ch) }

// Put enqueues one tuple per the policy. Block waits for space (or ctx
// cancellation, or queue close); DropOldest never waits — it evicts the
// oldest queued tuple instead and counts the drop.
func (q *QueueOf[T]) Put(ctx context.Context, st T) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrQueueClosed
	}
	// In-flight accounting lets Close delay closing the channel until
	// every admitted Put has settled, so a racing Put can never send on a
	// closed channel.
	q.inflight.Add(1)
	q.mu.Unlock()
	defer q.inflight.Done()

	if q.policy == DropOldest {
		if !q.sendEvicting(st) {
			return ErrQueueClosed
		}
		return nil
	}
	select {
	case q.ch <- st:
		q.accept()
		return nil
	case <-q.done:
		return ErrQueueClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PutBatch enqueues a batch under one admission check and one in-flight
// account — the per-tuple mutex and WaitGroup costs that dominate Put at
// binary-frame ingest rates are paid once per frame instead. Semantics
// match len(sts) sequential Puts; it returns how many tuples were
// enqueued, so on ErrQueueClosed (epoch rollover mid-batch) the caller
// can re-offer the remainder to the next epoch's queue.
func (q *QueueOf[T]) PutBatch(ctx context.Context, sts []T) (int, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, ErrQueueClosed
	}
	q.inflight.Add(1)
	q.mu.Unlock()
	defer q.inflight.Done()

	for i, st := range sts {
		if q.policy == DropOldest {
			if !q.sendEvicting(st) {
				return i, ErrQueueClosed
			}
			continue
		}
		select {
		case q.ch <- st:
			q.accept()
		case <-q.done:
			return i, ErrQueueClosed
		case <-ctx.Done():
			return i, ctx.Err()
		}
	}
	return len(sts), nil
}

// sendEvicting is the DropOldest send: evict until the tuple fits, never
// block. Reports false once the queue is closed.
func (q *QueueOf[T]) sendEvicting(st T) bool {
	for {
		select {
		case q.ch <- st:
			q.accept()
			return true
		case <-q.done:
			return false
		default:
		}
		select {
		case <-q.ch:
			q.dropped.Add(1)
		default:
			// The consumer raced us to the eviction; yield and retry.
			runtime.Gosched()
		}
	}
}

func (q *QueueOf[T]) accept() {
	q.accepted.Add(1)
	// Best-effort high-water mark; racy reads are fine for monitoring.
	if d := int64(len(q.ch)); d > q.highWater.Load() {
		q.highWater.Store(d)
	}
}

// Close ends the stream: subsequent Puts fail with ErrQueueClosed, and once
// in-flight Puts settle the channel closes, so the consuming RunLive
// processes everything accepted and then drains the plan gracefully.
// Idempotent and safe to call concurrently with Put.
func (q *QueueOf[T]) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.done)
	// Blocked Puts may need the consumer to make room before they settle,
	// so the final close happens off the caller's goroutine.
	go func() {
		q.inflight.Wait()
		close(q.ch)
	}()
}

// QueueStats is a monitoring snapshot.
type QueueStats struct {
	Accepted  uint64 `json:"accepted"`
	Dropped   uint64 `json:"dropped"`
	Depth     int    `json:"depth"`
	Capacity  int    `json:"capacity"`
	HighWater int    `json:"high_water"`
	Policy    string `json:"policy"`
}

// Stats snapshots the queue counters; safe while producers and the engine
// are running.
func (q *QueueOf[T]) Stats() QueueStats {
	return QueueStats{
		Accepted:  q.accepted.Load(),
		Dropped:   q.dropped.Load(),
		Depth:     len(q.ch),
		Capacity:  cap(q.ch),
		HighWater: int(q.highWater.Load()),
		Policy:    q.policy.String(),
	}
}
