package server

import (
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/uop"
)

// A plan factory compiles one fresh diagram per engine epoch: compiled
// graphs carry window/join state and are single-use, so each end-of-stream
// drain is followed by a new compile, never a reused graph (the lifecycle
// rules — Close idempotent, Push-after-Close an error — make reuse fail
// loudly rather than corrupt windows).

// DefaultQ1Config is the Q1 plan cmd/streamd serves by default and the
// plan cmd/rfidtrace's offline -wire reference compiles. One definition on
// purpose: the replay-vs-offline byte-equality contract holds only while
// daemon and load generator agree on every parameter, so both derive from
// here instead of repeating literals.
func DefaultQ1Config() uop.Q1Config {
	return uop.Q1Config{
		WindowMS:     5 * stream.Second,
		ThresholdLbs: 200,
		AreaFt:       10,
		Strategy:     core.CFApprox,
		MinAlertProb: 0.5,
	}
}

// Q1Plan returns the per-epoch factory for the fire-code query: the daemon
// feeds wire tuples into its "locations" source and streams the
// confidence-annotated HAVING survivors back as alerts. cfg.Shards >= 1
// compiles the diagram shard-parallel (alerts stay byte-identical to the
// unsharded plan).
func Q1Plan(cfg uop.Q1Config) func() *uop.Compiled {
	return func() *uop.Compiled { return uop.BuildQ1(cfg).Compile() }
}

// DefaultQ3Config is the per-area weight-quantile plan cmd/streamd serves
// with -query quantile and the plan cmd/rfidtrace's offline -quantile -wire
// reference compiles — one definition, same reasoning as DefaultQ1Config.
func DefaultQ3Config() uop.Q3Config {
	return uop.Q3Config{
		WindowMS:     5 * stream.Second,
		Level:        0.5,
		ThresholdLbs: 25,
		AreaFt:       10,
		MinAlertProb: 0.5,
	}
}

// Q3Plan returns the per-epoch factory for the streaming-quantile query.
func Q3Plan(cfg uop.Q3Config) func() *uop.Compiled {
	return func() *uop.Compiled { return uop.BuildQ3(cfg).Compile() }
}

// DefaultQ4Config is the top-k dominating plan behind -query topk: the
// three window objects most likely to dominate the rest in both location
// dimensions, tagged by rank and object id.
func DefaultQ4Config() uop.Q4Config {
	return uop.Q4Config{
		WindowMS: 5 * stream.Second,
		K:        3,
	}
}

// Q4Plan returns the per-epoch factory for the top-k dominating query.
func Q4Plan(cfg uop.Q4Config) func() *uop.Compiled {
	return func() *uop.Compiled { return uop.BuildQ4(cfg).Compile() }
}

// Q2PlanConfig parameterizes the daemon's flammable-object query. Unlike
// uop.Q2Config it needs no warehouse: the daemon cannot look up object
// types, so flammability rides the wire as a certain key ("flam" == 1 on
// "locations" tuples), keeping the plan self-contained.
type Q2PlanConfig struct {
	// RangeMS is each side's join window (default 3 s).
	RangeMS stream.Time
	// TempThreshold in °C (default 60).
	TempThreshold float64
	// LocTolFt is the co-location tolerance defining loc_equals (default 3).
	LocTolFt float64
	// MinProb drops alerts with existence below this (default 0.05).
	MinProb float64
	// Shards >= 1 compiles the diagram shard-parallel.
	Shards int
}

func (c Q2PlanConfig) withDefaults() Q2PlanConfig {
	if c.RangeMS <= 0 {
		c.RangeMS = 3 * stream.Second
	}
	if c.TempThreshold == 0 {
		c.TempThreshold = 60
	}
	if c.LocTolFt <= 0 {
		c.LocTolFt = 3
	}
	if c.MinProb <= 0 {
		c.MinProb = 0.05
	}
	return c
}

// Q2Plan returns the per-epoch factory for the flammable-object query over
// two wire sources: "locations" (filtered to flam == 1) joined on
// probabilistic co-location with "temps" (filtered to temp > threshold).
func Q2Plan(cfg Q2PlanConfig) func() *uop.Compiled {
	cfg = cfg.withDefaults()
	return func() *uop.Compiled {
		flam := uop.From("locations").Shards(cfg.Shards).
			Where("σ(flam=1)", func(u *core.UTuple) bool {
				return u.HasKey("flam") && u.Key("flam") == 1
			})
		hot := uop.From("temps").Shards(cfg.Shards).
			WhereGreater("temp", cfg.TempThreshold, cfg.MinProb)
		return flam.JoinProb(hot, cfg.RangeMS, []string{"x", "y"}, cfg.LocTolFt, cfg.MinProb).Compile()
	}
}
