package server

import (
	"net"
	"sync/atomic"
)

// ConnTrack wraps a protocol connection with the counters /statsz
// reports per connection: negotiated protocol, message counts by kind,
// raw bytes both ways, and decode errors. The router reuses it for its
// client connections, so a whole cluster's link protocols are auditable
// the same way.
type ConnTrack struct {
	net.Conn
	remote     string
	bytesIn    atomic.Uint64
	bytesOut   atomic.Uint64
	linesIn    atomic.Uint64
	framesIn   atomic.Uint64
	decodeErrs atomic.Uint64
	bin        atomic.Bool
}

// TrackConn wraps an accepted connection.
func TrackConn(c net.Conn) *ConnTrack {
	t := &ConnTrack{Conn: c}
	if a := c.RemoteAddr(); a != nil {
		t.remote = a.String()
	}
	return t
}

func (t *ConnTrack) Read(p []byte) (int, error) {
	n, err := t.Conn.Read(p)
	t.bytesIn.Add(uint64(n))
	return n, err
}

func (t *ConnTrack) Write(p []byte) (int, error) {
	n, err := t.Conn.Write(p)
	t.bytesOut.Add(uint64(n))
	return n, err
}

// CountLine records one received JSON line.
func (t *ConnTrack) CountLine() { t.linesIn.Add(1) }

// CountFrame records one received binary frame and marks the connection's
// negotiated protocol binary.
func (t *ConnTrack) CountFrame() {
	t.framesIn.Add(1)
	t.bin.Store(true)
}

// CountDecodeErr records one malformed message (either protocol).
func (t *ConnTrack) CountDecodeErr() { t.decodeErrs.Add(1) }

// Binary reports whether the connection has negotiated the binary
// protocol (sent at least one frame).
func (t *ConnTrack) Binary() bool { return t.bin.Load() }

// ConnStatsz is one connection's row in the /statsz conns section.
type ConnStatsz struct {
	Remote string `json:"remote"`
	// Proto is the negotiated wire protocol: "json" until the peer's
	// first binary frame, "bin" after (a binary connection may still
	// interleave JSON control lines; LinesIn counts them).
	Proto        string `json:"proto"`
	LinesIn      uint64 `json:"lines_in"`
	FramesIn     uint64 `json:"frames_in"`
	BytesIn      uint64 `json:"bytes_in"`
	BytesOut     uint64 `json:"bytes_out"`
	DecodeErrors uint64 `json:"decode_errors,omitempty"`
}

// Statsz snapshots the connection's counters.
func (t *ConnTrack) Statsz() ConnStatsz {
	proto := "json"
	if t.bin.Load() {
		proto = "bin"
	}
	return ConnStatsz{
		Remote:       t.remote,
		Proto:        proto,
		LinesIn:      t.linesIn.Load(),
		FramesIn:     t.framesIn.Load(),
		BytesIn:      t.bytesIn.Load(),
		BytesOut:     t.bytesOut.Load(),
		DecodeErrors: t.decodeErrs.Load(),
	}
}
