// Package server is the network ingest layer: a TCP JSON-lines front end
// that parses client lines into uncertain tuples, feeds a compiled
// (sharded) query plan running continuously (stream.RunLive), streams
// alerts back to subscribers as windows close, and applies backpressure
// through a bounded ingest queue. An optional HTTP endpoint (/statsz)
// exposes per-box engine stats, queue depths, and throughput.
//
// The wire protocol is newline-delimited JSON, symmetric enough that a load
// generator can diff a live run against an offline one byte for byte:
//
//	client → server
//	  {"kind":"tuple","source":"locations","t_ms":1200,
//	   "keys":{"tag":17},
//	   "attrs":{"x":[41.2,1.5],"y":[7.0,1.5],"z":2.25,"weight":140}}
//	  {"kind":"sub"}      subscribe this connection to the alert stream
//	  {"kind":"end"}      end of input: drain the plan, flush open windows
//	  {"kind":"ckpt"}     checkpoint now: quiesce, snapshot, persist
//
//	server → client
//	  {"kind":"ok"}                        command acknowledged
//	  {"kind":"err","error":"..."}         per-connection error (bad line)
//	  {"kind":"alert","t_ms":...,...}      one alert, as windows close
//	  {"kind":"done","alerts":N}           the drain after "end" finished
//
// Attribute values are either a bare number (a certain value — point mass)
// or a [mean, std] pair (a Gaussian). That is deliberately lossy for richer
// posteriors: the client decides how to summarize its distributions onto
// the wire, and both the live plan and any offline reference consume the
// identical parsed tuples, so equivalence checks stay byte-identical.
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/stream"
)

// Attr is an uncertain attribute value on the wire: a certain number, or a
// Gaussian as [mean, std]. It marshals back to the same shape (std == 0
// renders as a bare number).
type Attr struct {
	Mean float64
	Std  float64
}

// PointAttr wires a certain value.
func PointAttr(v float64) Attr { return Attr{Mean: v} }

// DistAttr summarizes a distribution onto the wire as [mean, std].
func DistAttr(d dist.Dist) Attr { return Attr{Mean: d.Mean(), Std: d.Std()} }

// MarshalJSON implements json.Marshaler.
func (a Attr) MarshalJSON() ([]byte, error) {
	if a.Std == 0 {
		return json.Marshal(a.Mean)
	}
	return json.Marshal([2]float64{a.Mean, a.Std})
}

// UnmarshalJSON implements json.Unmarshaler: a number or a [mean, std]
// array. The array arity is checked explicitly — Go decodes JSON arrays
// into fixed-size Go arrays leniently ([] would become a certain 0), and
// this is the ingest boundary, where a malformed value must be an error,
// not a silent zero in a window aggregate.
func (a *Attr) UnmarshalJSON(b []byte) error {
	var v float64
	if err := json.Unmarshal(b, &v); err == nil {
		*a = Attr{Mean: v}
		return nil
	}
	var pair []float64
	if err := json.Unmarshal(b, &pair); err != nil {
		return fmt.Errorf("attr must be a number or a [mean, std] pair: %w", err)
	}
	if len(pair) != 2 {
		return fmt.Errorf("attr array has %d elements, want [mean, std]", len(pair))
	}
	*a = Attr{Mean: pair[0], Std: pair[1]}
	return nil
}

// Dist lifts the wire attribute into a distribution.
func (a Attr) Dist() (dist.Dist, error) {
	if math.IsNaN(a.Mean) || math.IsInf(a.Mean, 0) || math.IsNaN(a.Std) || math.IsInf(a.Std, 0) {
		return nil, fmt.Errorf("attr [%v, %v] is not finite", a.Mean, a.Std)
	}
	if a.Std < 0 {
		return nil, fmt.Errorf("attr std %v is negative", a.Std)
	}
	if a.Std == 0 {
		return dist.PointMass{V: a.Mean}, nil
	}
	return dist.NewNormal(a.Mean, a.Std), nil
}

// Msg is one protocol line, client- or server-originated; Kind selects
// which fields are meaningful.
type Msg struct {
	Kind string `json:"kind"`
	// Source names the plan's input stream a tuple feeds (default
	// "locations").
	Source string `json:"source,omitempty"`
	// T is the tuple or alert application timestamp in milliseconds.
	T int64 `json:"t_ms,omitempty"`
	// Keys are certain integer identity attributes (tag ids).
	Keys map[string]int64 `json:"keys,omitempty"`
	// Attrs are the uncertain attributes (json.Marshal emits map keys
	// sorted, so encoded lines are deterministic).
	Attrs map[string]Attr `json:"attrs,omitempty"`
	// Group is the alert's group key (Q1's floor area).
	Group string `json:"group,omitempty"`
	// P is the alert probability.
	P *float64 `json:"p,omitempty"`
	// Error carries a per-connection error message.
	Error string `json:"error,omitempty"`
	// Alerts is the epoch's alert count. A pointer so "done" always carries
	// the field — a zero-alert epoch must encode {"kind":"done","alerts":0},
	// not {"kind":"done"}: rfidtrace's resume arithmetic (seen − alerts) and
	// strict client parsers read it unconditionally. Subscribe acks still
	// omit it when there is no epoch to resume (a fresh subscribe acks the
	// plain {"kind":"ok"}).
	Alerts *uint64 `json:"alerts,omitempty"`

	// Cluster-protocol fields (router ↔ worker; every one is omitempty, so
	// client-facing lines — alerts, done — are byte-identical to the
	// single-process protocol).

	// Seq is the router partitioner's global arrival stamp on routed
	// tuples, and the close counter on "close" lines.
	Seq uint64 `json:"seq,omitempty"`
	// Shard is the logical worker slot a line concerns: the routed slot on
	// tuples, the originating slot on "part"/"ckpt_ack" lines, the promoted
	// slot on "promote"/"promoted"/"snap". A pointer because slot 0 is
	// meaningful.
	Shard *int `json:"shard,omitempty"`
	// Replica marks a dual-written tuple copy: the receiver appends it to
	// the slot's replay tail instead of feeding a plan.
	Replica bool `json:"replica,omitempty"`
	// Workers and Replicas carry cluster geometry on "join".
	Workers  int `json:"workers,omitempty"`
	Replicas int `json:"replicas,omitempty"`
	// Version is the ring membership version ("join", "pong").
	Version uint64 `json:"version,omitempty"`
	// Ckpt identifies a cluster checkpoint round ("ckpt", "ckpt_ack",
	// "snap", "snap_ack", "promote").
	Ckpt uint64 `json:"ckpt,omitempty"`
	// Closes counts window-close punctuations: the snapshot's consumed
	// prefix on "ckpt_ack"/"snap", the router-side suppression floor on
	// "promote".
	Closes uint64 `json:"closes,omitempty"`
	// Data is an opaque binary payload (base64 on the wire): a
	// stream.EncodeWireTuple blob on "part", a plan checkpoint on
	// "ckpt_ack"/"snap", a composite reset blob on "reset".
	Data []byte `json:"data,omitempty"`
	// Addr is a worker's advertised listen address on a "join" offer (a
	// worker asking a router to admit it) and on an administrative "leave".
	Addr string `json:"addr,omitempty"`
	// Align forces a promoted instance's window ordinal to Closes instead of
	// the snapshot's recorded close count: a slot migrated mid-stream (or
	// re-acquired after degradation) must emit from the router's current
	// merge ordinal, unlike a failover, which replays the full tail from the
	// snapshot's ordinal.
	Align bool `json:"align,omitempty"`
}

// Protocol message kinds.
const (
	KindTuple = "tuple"
	KindSub   = "sub"
	KindEnd   = "end"
	KindCkpt  = "ckpt"
	KindOK    = "ok"
	KindErr   = "err"
	KindAlert = "alert"
	KindDone  = "done"

	// Liveness probe: any peer may send "ping"; the reply is "pong" with
	// the responder's cluster membership version (0 when unclustered).
	KindPing = "ping"
	KindPong = "pong"

	// Cluster kinds (router ↔ worker). "join" configures a worker's slot
	// and geometry; "close" replays the router clock's window-close
	// punctuations; "part" ships a partial-aggregate tuple or forwarded
	// close back to the router; "ckpt_ack" answers a cluster "ckpt" with
	// the slot's snapshot; "snap"/"snap_ack" install that snapshot on the
	// slot's replica; "promote"/"promoted" fail a dead worker's slot over
	// to its replica.
	KindJoin     = "join"
	KindClose    = "close"
	KindPart     = "part"
	KindCkptAck  = "ckpt_ack"
	KindSnap     = "snap"
	KindSnapAck  = "snap_ack"
	KindPromote  = "promote"
	KindPromoted = "promoted"

	// Membership/recovery kinds. "reset" rewinds a worker to a router
	// checkpoint cut (composite blob in Data: own plan, hosted instances,
	// replica snapshots) — sent by a recovering router before it
	// resubscribes; "release" tells a worker to stop emitting for a slot
	// that migrated away; "leave" is a worker announcing graceful departure
	// (or an admin asking the router to drain one).
	KindReset   = "reset"
	KindRelease = "release"
	KindLeave   = "leave"
)

// errMsg builds a per-connection error reply.
func errMsg(format string, args ...any) Msg {
	return Msg{Kind: KindErr, Error: fmt.Sprintf(format, args...)}
}

// AlertCount reads the Alerts field, absent meaning zero.
func (m Msg) AlertCount() uint64 {
	if m.Alerts == nil {
		return 0
	}
	return *m.Alerts
}

// AlertsField boxes an alert count for Msg.Alerts.
func AlertsField(n uint64) *uint64 { return &n }

// ParseTuple validates a "tuple" message and builds the uncertain tuple it
// describes. Attribute names are sorted so the tuple layout is independent
// of JSON map iteration order. Errors are values, never panics: this is the
// ingest boundary, and a malformed client line must cost one error reply,
// not a box goroutine.
func ParseTuple(m Msg) (*core.UTuple, error) {
	if m.T < 0 {
		return nil, fmt.Errorf("tuple t_ms %d is negative", m.T)
	}
	if len(m.Attrs) == 0 {
		return nil, fmt.Errorf("tuple carries no attrs")
	}
	names := make([]string, 0, len(m.Attrs))
	for n := range m.Attrs {
		if n == "" {
			return nil, fmt.Errorf("tuple has an empty attr name")
		}
		names = append(names, n)
	}
	sort.Strings(names)
	attrs := make([]dist.Dist, len(names))
	for i, n := range names {
		d, err := m.Attrs[n].Dist()
		if err != nil {
			return nil, fmt.Errorf("attr %q: %w", n, err)
		}
		attrs[i] = d
	}
	u := core.NewUTuple(stream.Time(m.T), names, attrs)
	for k, v := range m.Keys {
		u.SetKey(k, v)
	}
	return u, nil
}

// AlertMsg encodes a result tuple from a compiled plan's sink as an alert
// line. It reads the tuple exclusively through the non-panicking Try*
// accessors: result schemas vary by plan (Q1 alerts carry "group" and "p"
// columns, Q2 join outputs only the payload), and the encoder runs on the
// sink box's goroutine, where a panic would take the engine down.
func AlertMsg(t *stream.Tuple) (Msg, error) {
	uv, ok := t.TryField("u")
	if !ok {
		return Msg{}, fmt.Errorf("result tuple carries no payload field")
	}
	u, ok := uv.(*core.UTuple)
	if !ok {
		return Msg{}, fmt.Errorf("result payload is %T, not an uncertain tuple", uv)
	}
	m := Msg{Kind: KindAlert, T: int64(t.TS)}
	grouped := false
	if g, ok := t.TryString("group"); ok {
		m.Group = g
		grouped = true
	}
	p := u.Exist
	if hp, ok := t.TryFloat("p"); ok {
		p = hp
	}
	m.P = &p
	if len(u.Keys) > 0 {
		m.Keys = make(map[string]int64, len(u.Keys))
		for k, v := range u.Keys {
			m.Keys[k] = v
		}
	}
	names := u.Names()
	m.Attrs = make(map[string]Attr, len(names))
	for _, n := range names {
		if n == "group" && grouped {
			continue // spine aggregates carry an internal marker attr
		}
		m.Attrs[n] = DistAttr(u.Attr(n))
	}
	return m, nil
}

// EncodeLine marshals a message as one protocol line (trailing newline
// included). Encoding is deterministic — struct field order plus sorted map
// keys — so identical alerts encode to identical bytes on every path.
func EncodeLine(m Msg) ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
