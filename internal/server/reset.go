package server

import (
	"fmt"

	"repro/internal/snap"
)

// This file is the "reset" composite: the blob a recovering router sends a
// worker to rewind it to a checkpoint cut before resubscribing. One reset
// line replaces the worker's entire per-epoch cluster state — its own plan,
// every hosted instance, and every replica-held snapshot — so the worker's
// next epoch starts exactly at the router's recovered cut instead of
// wherever its previous (now orphaned) epoch had drifted to.

const resetBlobV1 = 1

// SlotBlob is one slot's piece of a reset: the slot id, the window-close
// count the snapshot covers, and the plan checkpoint bytes (empty for a
// fresh start).
type SlotBlob struct {
	Slot   int
	Closes uint64
	Data   []byte
}

// ResetBlob is the composite payload of a "reset" line.
type ResetBlob struct {
	// Ckpt is the cluster checkpoint id the blobs were taken at (0 for a
	// reset to empty — a router with no recovered state clearing a worker's
	// orphaned epoch).
	Ckpt uint64
	// Own restores the worker's own slot plan; nil releases the own slot
	// (its state lives elsewhere now, or the router recovered nothing).
	Own *SlotBlob
	// Insts restores hosted (promoted/migrated) slot instances.
	Insts []SlotBlob
	// Reps seeds replica snapshot records, so a later promote on this
	// worker finds the blob the router's lastSnap bookkeeping names.
	Reps []SlotBlob
}

// Encode serializes the composite with the engine's snapshot codec.
func (rb *ResetBlob) Encode() []byte {
	var w snap.Writer
	w.U8(resetBlobV1)
	w.Uvarint(rb.Ckpt)
	w.Bool(rb.Own != nil)
	if rb.Own != nil {
		writeSlotBlob(&w, *rb.Own)
	}
	w.Uvarint(uint64(len(rb.Insts)))
	for _, sb := range rb.Insts {
		writeSlotBlob(&w, sb)
	}
	w.Uvarint(uint64(len(rb.Reps)))
	for _, sb := range rb.Reps {
		writeSlotBlob(&w, sb)
	}
	return w.Bytes()
}

func writeSlotBlob(w *snap.Writer, sb SlotBlob) {
	w.Varint(int64(sb.Slot))
	w.Uvarint(sb.Closes)
	w.Blob(sb.Data)
}

func readSlotBlob(r *snap.Reader) SlotBlob {
	return SlotBlob{
		Slot:   int(r.Varint()),
		Closes: r.Uvarint(),
		Data:   r.Blob(),
	}
}

// DecodeResetBlob parses a reset composite.
func DecodeResetBlob(data []byte) (*ResetBlob, error) {
	r := snap.NewReader(data)
	if v := r.U8(); v != resetBlobV1 {
		r.Fail("reset blob version %d unsupported", v)
	}
	rb := &ResetBlob{Ckpt: r.Uvarint()}
	if r.Bool() {
		sb := readSlotBlob(r)
		rb.Own = &sb
	}
	for i, n := 0, r.Len(); i < n && r.Err() == nil; i++ {
		rb.Insts = append(rb.Insts, readSlotBlob(r))
	}
	for i, n := 0, r.Len(); i < n && r.Err() == nil; i++ {
		rb.Reps = append(rb.Reps, readSlotBlob(r))
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("reset blob: %w", err)
	}
	return rb, nil
}
