package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/uop"
)

// Config parameterizes the ingest server.
type Config struct {
	// Addr is the TCP listen address for the JSON-lines protocol
	// (host:port; ":0" picks a free port — tests use this).
	Addr string
	// HTTPAddr, when non-empty, serves GET /statsz on a second listener.
	HTTPAddr string
	// NewPlan compiles one fresh diagram per engine epoch (required).
	// Q1Plan/Q2Plan build the standard factories.
	NewPlan func() *uop.Compiled
	// QueueCap bounds the ingest queue (default 1024).
	QueueCap int
	// Policy is the backpressure behavior of a full queue.
	Policy Policy
	// Buffer is the per-box channel buffer of the live executor.
	Buffer int
	// FlushEvery bounds quiet-graph output latency (see stream.RunLive).
	FlushEvery time.Duration
	// SubBuffer bounds each subscriber's pending-line buffer; lines beyond
	// it are dropped and counted (default 4096).
	SubBuffer int
	// Once stops the server after the first end-of-stream drain — the
	// replay/smoke-test mode.
	Once bool
	// Store, when non-nil, enables crash-safe durable state: the engine
	// writes periodic checkpoints of the running plan, a final checkpoint
	// on graceful shutdown, and recovers the newest epoch on startup —
	// resuming open windows so post-restart alerts match an uninterrupted
	// run byte for byte.
	Store Store
	// CheckpointEvery is the periodic checkpoint cadence (0 disables the
	// timer; drain/shutdown and client-triggered "ckpt" checkpoints still
	// run whenever Store is set).
	CheckpointEvery time.Duration
	// Cluster runs this server as a cluster worker: a router "join" assigns
	// it a slot, tuples arrive pre-routed with sequence stamps, window
	// closes arrive as explicit "close" punctuations, and plan results ship
	// back as "part" lines instead of client-facing alerts. NewPlan must
	// compile a worker-side plan (uop.ClusterPlan.CompileWorker).
	Cluster bool
}

// epoch is one continuous run of a freshly compiled plan: the engine serves
// epochs back to back, compiling a new diagram after each end-of-stream
// drain (compiled graphs are single-use).
type epoch struct {
	n      int
	plan   *uop.Compiled
	queue  *Queue
	alerts atomic.Uint64
	// barriers delivers checkpoint functions to the live executor's feeder
	// (see stream.LiveOptions.Barriers); runDone closes when RunLive
	// returns, releasing anyone waiting to deliver one.
	barriers chan func()
	runDone  chan struct{}
	finished atomic.Bool
	// recovered marks an epoch restored from a checkpoint at startup.
	recovered bool
}

// Server is the TCP/HTTP ingest front end around a continuously running
// compiled plan.
type Server struct {
	cfg    Config
	ln     net.Listener
	httpLn net.Listener

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	// done closes when the engine loop exits (after Once's drain, or on
	// shutdown).
	done chan struct{}

	hub Hub

	mu       sync.Mutex
	ep       *epoch
	eps      []*epoch // recent epochs (pruned), for all-epoch stats
	conns    map[*ConnTrack]struct{}
	shutdown bool
	// prunedDrops accumulates queue drops from epochs pruned out of eps,
	// so the cumulative counter survives epoch turnover.
	prunedDrops uint64

	start      time.Time
	ingested   atomic.Uint64
	ingestErrs atomic.Uint64
	encodeErrs atomic.Uint64
	alerts     atomic.Uint64

	// crashed simulates abrupt termination (Crash): checkpointing stops
	// immediately, so only checkpoints already on disk survive.
	crashed atomic.Bool

	ckptMu   sync.Mutex
	ckptLast ckptRecord
	ckptN    atomic.Uint64
	ckptErrs atomic.Uint64

	// cl is the worker-side cluster state (nil unless Config.Cluster).
	cl *clusterState
}

// ckptRecord is the most recent checkpoint's vitals.
type ckptRecord struct {
	at    time.Time
	bytes int
	took  time.Duration
	err   string
}

// New validates the config, binds the listeners, and starts the engine and
// accept loops. Stop with Close (graceful: the running epoch drains).
func New(cfg Config) (*Server, error) {
	if cfg.NewPlan == nil {
		return nil, errors.New("server: Config.NewPlan is required")
	}
	if cfg.Addr == "" {
		return nil, errors.New("server: Config.Addr is required")
	}
	if cfg.SubBuffer <= 0 {
		cfg.SubBuffer = 4096
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:   cfg,
		ln:    ln,
		done:  make(chan struct{}),
		conns: map[*ConnTrack]struct{}{},
		start: time.Now(),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.hub.subs = map[*Subscriber]struct{}{}
	if cfg.Cluster {
		s.cl = newClusterState(s)
	}
	if cfg.HTTPAddr != "" {
		httpLn, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("server: listen %s: %w", cfg.HTTPAddr, err)
		}
		s.httpLn = httpLn
		mux := http.NewServeMux()
		mux.HandleFunc("/statsz", s.handleStatsz)
		srv := &http.Server{Handler: mux}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			srv.Serve(httpLn) // returns when the listener closes
		}()
	}
	s.wg.Add(2)
	go s.engineLoop()
	go s.acceptLoop()
	return s, nil
}

// Addr returns the protocol listener's address (for ":0" configs).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// HTTPAddr returns the /statsz listener's address, or nil.
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// Done closes when the engine loop has exited — with Config.Once, after the
// first end-of-stream drain completes and the "done" line has been
// broadcast.
func (s *Server) Done() <-chan struct{} { return s.done }

// Close shuts the server down gracefully: ingestion stops, the running
// epoch drains (open windows flush, final alerts reach subscribers,
// followed by a "done" line), and every connection closes.
func (s *Server) Close() error {
	s.cancel()
	s.ln.Close()
	if s.httpLn != nil {
		s.httpLn.Close()
	}
	// The engine must finish its drain (and the final broadcasts) before
	// subscriber channels close; the pumps must then deliver everything
	// queued before the connections close under them.
	<-s.done
	s.hub.CloseAll()
	s.hub.pumps.Wait()
	// The shutdown flag closes the race with acceptLoop: a connection
	// accepted just before the listener closed but not yet registered is
	// closed by acceptLoop itself once it sees the flag, so no handler can
	// linger on a socket nobody closes.
	s.mu.Lock()
	s.shutdown = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// AnnounceLeave broadcasts a graceful-departure notice to this worker's
// subscribers — in cluster mode, the router's link — which responds by
// migrating the worker's slots away and dropping the link. Best-effort: a
// worker with no router attached announces into the void.
func (s *Server) AnnounceLeave() {
	s.hub.BroadcastControl(mustLine(Msg{Kind: KindLeave}))
}

// Crash simulates abrupt process termination (kill -9) for recovery tests:
// checkpointing stops immediately — no final checkpoint is written, so only
// checkpoints already on disk survive — and the in-memory plan state is
// torn down without being persisted. The durable-state guarantee under test
// is exactly this: restarting against the same Store resumes from the last
// completed checkpoint, and replaying the post-checkpoint suffix reproduces
// the uninterrupted run's alerts byte for byte.
func (s *Server) Crash() {
	s.crashed.Store(true)
	s.Close()
}

// engineLoop serves epochs back to back: compile a fresh plan, run it live
// against a fresh ingest queue until the queue closes ("end") or the server
// shuts down, broadcast "done", repeat. Plans are never reused across
// epochs — compiled graphs are single-use.
//
// With a Store configured, the first epoch recovers the newest checkpoint
// on disk (resuming its open windows and epoch number), every epoch writes
// a final checkpoint as part of its drain (before open windows flush, so a
// restore still drains identically), and a cleanly completed stream deletes
// its checkpoint — recovery must never resurrect a finished epoch.
func (s *Server) engineLoop() {
	defer s.wg.Done()
	defer close(s.done)
	n := 0
	tryRecover := s.cfg.Store != nil
	for ; ; n++ {
		ep := &epoch{
			n:        n,
			plan:     s.cfg.NewPlan(),
			queue:    NewQueue(s.cfg.QueueCap, s.cfg.Policy),
			barriers: make(chan func()),
			runDone:  make(chan struct{}),
		}
		if tryRecover {
			tryRecover = false
			if rn, ok := s.recoverEpoch(ep); ok {
				ep.n, n = rn, rn
				ep.recovered = true
			}
		}
		if s.cl != nil {
			// Worker mode: plan results are partial-aggregate tuples and
			// forwarded closes; ship them to the router as "part" lines
			// instead of alert lines. beginEpoch also resets the per-epoch
			// replica tails and failover instances.
			pe := s.cl.beginEpoch(ep)
			ep.plan.OnResult(func(t *stream.Tuple) { s.cl.emitPart(ep, pe, t) })
		} else {
			ep.plan.OnResult(func(t *stream.Tuple) { s.emitAlert(ep, t) })
		}
		s.mu.Lock()
		s.ep = ep
		s.eps = append(s.eps, ep)
		// Prune: keep the last few epochs for stats, folding evicted queue
		// drops into the cumulative counter.
		for len(s.eps) > 8 {
			s.prunedDrops += s.eps[0].queue.Stats().Dropped
			s.eps = s.eps[1:]
		}
		s.mu.Unlock()
		if s.cfg.Store != nil && s.cfg.CheckpointEvery > 0 {
			s.wg.Add(1)
			go s.periodicCheckpoints(ep)
		}
		err := ep.plan.RunLiveOpts(s.ctx, ep.queue, stream.LiveOptions{
			Buffer:     s.cfg.Buffer,
			FlushEvery: s.cfg.FlushEvery,
			Barriers:   ep.barriers,
			BeforeFlush: func() {
				// The graph is quiescent and open windows have not flushed:
				// the final checkpoint of this epoch. Skipped after Crash —
				// an aborted process writes nothing.
				if s.cfg.Store != nil && !s.crashed.Load() {
					s.writeCheckpoint(ep)
				}
			},
		})
		close(ep.runDone)
		ep.finished.Store(true)
		ep.queue.Close() // idempotent; ensures producers fail fast after a cancel
		if s.cl != nil {
			// Promoted failover instances must drain before "done": the
			// router counts this worker's ports complete only after every
			// hosted slot's final parts are on the wire.
			s.cl.finishEpoch()
		}
		s.hub.BroadcastControl(mustLine(Msg{Kind: KindDone, Alerts: AlertsField(ep.alerts.Load())}))
		if err == nil && s.ctx.Err() == nil && s.cfg.Store != nil {
			// Clean end-of-stream: the epoch is complete, its checkpoint must
			// not be recovered into a fresh restart.
			if derr := s.cfg.Store.Delete(ep.n); derr != nil {
				s.noteCkptErr(derr)
			}
		}
		if err != nil || s.cfg.Once || s.ctx.Err() != nil {
			return
		}
	}
}

// recoverEpoch restores the newest on-disk checkpoint into ep's freshly
// compiled plan. It returns the recovered epoch number, or ok == false when
// there is nothing (or nothing usable) to recover — a corrupt or
// incompatible checkpoint falls back to a fresh epoch numbered past it,
// leaving the bad file on disk for diagnosis.
func (s *Server) recoverEpoch(ep *epoch) (n int, ok bool) {
	epochs, err := s.cfg.Store.List()
	if err != nil {
		s.noteCkptErr(err)
		return 0, false
	}
	if len(epochs) == 0 {
		return 0, false
	}
	newest := epochs[len(epochs)-1]
	data, err := s.cfg.Store.Get(newest)
	if err == nil {
		err = ep.plan.RestoreFrom(data)
	}
	if err != nil {
		s.noteCkptErr(fmt.Errorf("recover epoch %d: %w", newest, err))
		return newest + 1, true // fresh state, but don't reuse the bad number
	}
	return newest, true
}

// writeCheckpoint snapshots ep's plan and persists it. It must run while
// the graph is quiescent — on the feeder goroutine via a barrier, or in
// BeforeFlush.
func (s *Server) writeCheckpoint(ep *epoch) error {
	start := time.Now()
	data, err := ep.plan.Checkpoint()
	if err == nil {
		err = s.cfg.Store.Put(ep.n, data)
	}
	if err != nil {
		s.noteCkptErr(err)
		return err
	}
	s.ckptN.Add(1)
	s.ckptMu.Lock()
	s.ckptLast = ckptRecord{at: time.Now(), bytes: len(data), took: time.Since(start)}
	s.ckptMu.Unlock()
	return nil
}

func (s *Server) noteCkptErr(err error) {
	s.ckptErrs.Add(1)
	s.ckptMu.Lock()
	s.ckptLast.err = err.Error()
	s.ckptMu.Unlock()
}

// periodicCheckpoints drives the timer-based checkpoint cadence for one
// epoch: each tick delivers a checkpoint function through the barrier
// channel (the feeder drains in-flight tuples, then runs it) and waits for
// it to finish, so ticks can never pile up behind a slow disk.
func (s *Server) periodicCheckpoints(ep *epoch) {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-ep.runDone:
			return
		case <-t.C:
			if s.crashed.Load() {
				return
			}
			done := make(chan struct{})
			fn := func() { s.writeCheckpoint(ep); close(done) }
			select {
			case ep.barriers <- fn:
				<-done
			case <-ep.runDone:
				return
			}
		}
	}
}

// requestCheckpoint runs one checkpoint of the current epoch on demand (the
// "ckpt" wire command) and waits for it to complete. It first waits for the
// ingest queue to drain, so the checkpoint provably covers every tuple
// acknowledged to this client before the request — the property the
// crash-recovery tests rely on to know exactly which suffix to replay.
func (s *Server) requestCheckpoint(ep *epoch) error {
	if s.cfg.Store == nil {
		return errors.New("checkpointing disabled (no store configured)")
	}
	deadline := time.Now().Add(10 * time.Second)
	for ep.queue.Depth() > 0 {
		select {
		case <-ep.runDone:
			return errors.New("epoch ended before checkpoint ran")
		default:
		}
		if time.Now().After(deadline) {
			return errors.New("checkpoint timed out waiting for queue drain")
		}
		time.Sleep(200 * time.Microsecond)
	}
	errc := make(chan error, 1)
	fn := func() { errc <- s.writeCheckpoint(ep) }
	select {
	case ep.barriers <- fn:
		select {
		case err := <-errc:
			return err
		case <-ep.runDone:
			return errors.New("epoch ended before checkpoint completed")
		}
	case <-ep.runDone:
		return errors.New("epoch ended before checkpoint ran")
	case <-time.After(10 * time.Second):
		return errors.New("checkpoint request timed out")
	}
}

// emitAlert runs on the sink box's goroutine: encode once, hand the line to
// every subscriber. Encoding failures are counted, never fatal — this
// goroutine is the engine.
func (s *Server) emitAlert(ep *epoch, t *stream.Tuple) {
	m, err := AlertMsg(t)
	if err != nil {
		s.encodeErrs.Add(1)
		return
	}
	line, err := EncodeLine(m)
	if err != nil {
		s.encodeErrs.Add(1)
		return
	}
	ep.alerts.Add(1)
	s.alerts.Add(1)
	s.hub.Broadcast(line)
}

func mustLine(m Msg) []byte {
	line, err := EncodeLine(m)
	if err != nil {
		panic(err) // fixed-shape control messages always encode
	}
	return line
}

// epoch returns the current epoch.
func (s *Server) epoch() *epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ep
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ct := TrackConn(c)
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[ct] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(ct)
	}
}

// handleConn reads protocol messages from one connection — JSON lines or
// binary frames, dispatched per message by the magic-byte sniff. Errors
// are strictly per-connection: a malformed message earns an "err" reply
// (always JSON) and the connection (and every other connection, and the
// engine) keeps running.
func (s *Server) handleConn(c *ConnTrack) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	w := bufio.NewWriter(c)
	var sub *Subscriber
	defer func() {
		if sub != nil && s.hub.Remove(sub) {
			sub.Close()
		}
	}()
	// reply writes a control message to the client. Before subscribing it
	// owns the connection's writer; after, the pump goroutine does, so
	// replies ride the subscriber queue instead.
	reply := func(m Msg) {
		line, err := EncodeLine(m)
		if err != nil {
			return
		}
		if sub != nil {
			sub.SendControl(line, &s.hub)
			return
		}
		w.Write(line)
		w.Flush()
	}
	maxLine := 1 << 20
	if s.cl != nil {
		// Cluster "snap" lines carry whole plan checkpoints (base64).
		maxLine = 1 << 26
	}
	wr := NewWireReader(c, maxLine)
	// Binary receive state, created on the connection's first frame.
	var bdec *BwDecoder
	var stScratch []stream.SourceTuple
	for {
		line, fr, rerr := wr.Next()
		if rerr != nil {
			// A read error (oversized message, truncated frame, mid-message
			// disconnect) ends the connection, but it still deserves the
			// per-connection error contract: count it and make a best-effort
			// reply before the socket closes, so a client sees why instead
			// of a bare EOF.
			if rerr != io.EOF {
				s.ingestErrs.Add(1)
				c.CountDecodeErr()
				reply(errMsg("read error: %v", rerr))
			}
			return
		}
		if line == nil {
			c.CountFrame()
			if bdec == nil {
				bdec = NewBwDecoder()
			}
			n, err := s.handleFrame(fr, bdec, &stScratch)
			s.ingested.Add(uint64(n))
			if err != nil {
				s.ingestErrs.Add(1)
				c.CountDecodeErr()
				reply(errMsg("%v", err))
			}
			continue
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		c.CountLine()
		var m Msg
		if err := json.Unmarshal(line, &m); err != nil {
			s.ingestErrs.Add(1)
			c.CountDecodeErr()
			reply(errMsg("bad line: %v", err))
			continue
		}
		switch m.Kind {
		case KindTuple:
			var err error
			if s.cl != nil {
				err = s.cl.handleTuple(line, m)
			} else {
				err = s.ingest(m)
			}
			if err != nil {
				s.ingestErrs.Add(1)
				reply(errMsg("%v", err))
				continue
			}
			s.ingested.Add(1)
		case KindPing:
			pong := Msg{Kind: KindPong}
			if s.cl != nil {
				pong.Version = s.cl.ringVersion()
			}
			reply(pong)
		case KindJoin, KindClose, KindSnap, KindPromote, KindReset, KindRelease:
			if s.cl == nil {
				reply(errMsg("%q requires a cluster worker (-mode worker)", m.Kind))
				continue
			}
			replies, err := s.cl.handleControl(line, m)
			if err != nil {
				s.ingestErrs.Add(1)
				reply(errMsg("%v", err))
				continue
			}
			for _, r := range replies {
				reply(r)
			}
		case KindSub:
			if sub != nil {
				reply(errMsg("already subscribed"))
				continue
			}
			newSub := NewSubscriber(s.cfg.SubBuffer)
			// A binary peer (the router, when its links run -proto bin)
			// receives part broadcasts as frames; alerts, acks, and done
			// stay JSON for every subscriber.
			newSub.bin = c.Binary()
			if !s.hub.Add(newSub) {
				reply(errMsg("server shutting down"))
				continue
			}
			// Ack while the handler still owns the writer, then hand it to
			// the pump.
			w.Write(mustLine(Msg{Kind: KindOK}))
			w.Flush()
			sub = newSub
			go s.hub.Pump(c, w, sub)
		case KindEnd:
			ep := s.epoch()
			if ep == nil {
				reply(errMsg("no epoch running"))
				continue
			}
			if s.cl != nil {
				// Mark end-of-epoch first: a promote that arrives after this
				// line must drain its instance inline before acking.
				s.cl.endEpoch()
			}
			ep.queue.Close()
			reply(Msg{Kind: KindOK})
		case KindCkpt:
			if s.cl != nil {
				// Cluster checkpoint: snapshot every hosted slot and reply
				// one ckpt_ack per slot (the router installs them on the
				// slots' replicas).
				replies, err := s.cl.handleControl(line, m)
				if err != nil {
					reply(errMsg("checkpoint: %v", err))
					continue
				}
				for _, r := range replies {
					reply(r)
				}
				continue
			}
			ep := s.epoch()
			if ep == nil {
				reply(errMsg("no epoch running"))
				continue
			}
			if err := s.requestCheckpoint(ep); err != nil {
				reply(errMsg("checkpoint: %v", err))
				continue
			}
			reply(Msg{Kind: KindOK})
		default:
			s.ingestErrs.Add(1)
			reply(errMsg("unknown kind %q", m.Kind))
		}
	}
}

// handleFrame dispatches one binary frame, returning how many tuples it
// ingested. Frame-shape problems and per-tuple semantic problems alike
// cost one error reply; the connection keeps running.
func (s *Server) handleFrame(fr BwFrame, bdec *BwDecoder, scratch *[]stream.SourceTuple) (int, error) {
	switch fr.Kind {
	case BwHello:
		// The frame's arrival already marked the connection binary; the
		// payload just has to be well-formed.
		return 0, DecodeBwHello(fr.Payload)
	case BwSchemaFrame:
		_, err := bdec.AddSchema(fr.Payload)
		return 0, err
	case BwTuples:
		bts, err := bdec.DecodeTuples(fr.Payload)
		if err != nil {
			return 0, err
		}
		if s.cl != nil {
			return s.cl.handleBwTuples(bts)
		}
		return s.ingestBatch(bts, scratch)
	case BwClose:
		if s.cl == nil {
			return 0, fmt.Errorf("close frames require a cluster worker (-mode worker)")
		}
		cm, err := DecodeBwClose(fr.Payload)
		if err != nil {
			return 0, err
		}
		return 0, s.cl.handleBwClose(cm)
	default:
		return 0, fmt.Errorf("unknown binary frame kind %#x", fr.Kind)
	}
}

// ingestBatch is the binary ingest fast path: where the JSON path pays an
// epoch lookup, a source lookup, and a queue admission per tuple, a
// 32-tuple frame pays each once. The scratch slice is per-connection and
// reused — SourceTuples are copied into the queue's channel on send.
func (s *Server) ingestBatch(bts []BwTuple, scratch *[]stream.SourceTuple) (int, error) {
	source := sourceName(bts[0].Schema.Source)
	if cap(*scratch) < len(bts) {
		*scratch = make([]stream.SourceTuple, len(bts))
	}
	sts := (*scratch)[:len(bts)]
	for i := range bts {
		u, err := bts[i].UTuple()
		if err != nil {
			return 0, fmt.Errorf("tuple %d: %w", i, err)
		}
		t := core.Wrap(u)
		// Routed cluster tuples carry the router partitioner's global
		// arrival stamp (see ingest); client tuples leave it zero.
		t.Seq = bts[i].Seq
		sts[i] = stream.SourceTuple{T: t}
	}
	// The same between-epochs retry contract as enqueue, batched: on
	// ErrQueueClosed mid-frame the accepted prefix stays accepted and the
	// remainder is re-offered to the next epoch.
	deadline := time.Now().Add(5 * time.Second)
	off := 0
	for {
		ep := s.epoch()
		if ep != nil {
			box, port, ok := ep.plan.LookupSource(source)
			if !ok {
				return off, fmt.Errorf("unknown source %q", source)
			}
			for i := off; i < len(sts); i++ {
				sts[i].Box, sts[i].Port = box, port
			}
			n, err := ep.queue.PutBatch(s.ctx, sts[off:])
			off += n
			if !errors.Is(err, ErrQueueClosed) {
				return off, err
			}
		}
		if s.ctx.Err() != nil {
			return off, ErrQueueClosed
		}
		select {
		case <-s.done:
			return off, errors.New("engine stopped; no further streams accepted")
		default:
		}
		if time.Now().After(deadline) {
			return off, errors.New("stream draining; retry")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// ingest parses and enqueues one tuple line. A tuple that lands in the gap
// between epochs — the previous stream drained, the next plan still
// compiling — waits briefly for the new epoch instead of failing, so back-
// to-back replays never lose their first tuples.
func (s *Server) ingest(m Msg) error {
	u, err := ParseTuple(m)
	if err != nil {
		return err
	}
	t := core.Wrap(u)
	// Routed cluster tuples carry the router partitioner's global arrival
	// stamp; the partial aggregate's dedup ordering depends on it. Client
	// tuples leave it zero and the plan stamps arrival order itself.
	t.Seq = m.Seq
	return s.enqueue(sourceOf(m), t)
}

// sourceOf resolves a tuple line's plan input stream.
func sourceOf(m Msg) string { return sourceName(m.Source) }

// sourceName resolves a wire source name — either protocol — to a plan
// input stream, defaulting to the Q1 feed.
func sourceName(s string) string {
	if s == "" {
		return "locations"
	}
	return s
}

// enqueue delivers one carrier tuple into the current epoch's ingest queue,
// waiting out the between-epochs gap.
func (s *Server) enqueue(source string, t *stream.Tuple) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		ep := s.epoch()
		if ep != nil {
			box, port, ok := ep.plan.LookupSource(source)
			if !ok {
				return fmt.Errorf("unknown source %q", source)
			}
			err := ep.queue.Put(s.ctx, stream.SourceTuple{Box: box, Port: port, T: t})
			if !errors.Is(err, ErrQueueClosed) {
				return err
			}
		}
		if s.ctx.Err() != nil {
			return ErrQueueClosed
		}
		select {
		case <-s.done:
			// The engine loop has exited (Once mode, or shutdown): no next
			// epoch is coming, so waiting out the deadline would just hang
			// the client 5 s per tuple.
			return errors.New("engine stopped; no further streams accepted")
		default:
		}
		if time.Now().After(deadline) {
			return errors.New("stream draining; retry")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Pump owns the connection's writer after subscription: it streams queued
// lines, flushing whenever the queue momentarily empties (the same
// flush-on-idle rule the engine's batches follow, for the same latency
// reason).
func (h *Hub) Pump(c net.Conn, w *bufio.Writer, sub *Subscriber) {
	defer h.pumps.Done()
	for line := range sub.ch {
		// Bound each write so a subscriber that stopped reading cannot
		// wedge shutdown behind a full TCP buffer.
		c.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := w.Write(line); err != nil {
			c.Close() // wake the read loop; hub removal happens there
			return
		}
		if len(sub.ch) == 0 {
			if err := w.Flush(); err != nil {
				c.Close()
				return
			}
		}
	}
	w.Flush()
}

// Subscriber is one alert-stream consumer.
type Subscriber struct {
	ch      chan []byte
	dropped atomic.Uint64
	// bin marks a binary-protocol peer: control broadcasts that have a
	// binary encoding (cluster "part" traffic) are delivered as frames.
	// Set before Hub.Add, immutable after.
	bin bool
	// mu guards closed and serializes bounded-wait control sends against
	// the channel close — per subscriber, so one slow consumer can never
	// hold a lock the engine's alert broadcast needs.
	mu     sync.Mutex
	closed bool
}

// NewSubscriber builds a subscriber whose queue holds buffer lines.
func NewSubscriber(buffer int) *Subscriber {
	return &Subscriber{ch: make(chan []byte, buffer)}
}

// Lines exposes the subscriber's queued lines for consumers that pump them
// somewhere other than a TCP connection (the router's merge feed).
func (sub *Subscriber) Lines() <-chan []byte { return sub.ch }

// Dropped reports lines lost to this subscriber's full queue.
func (sub *Subscriber) Dropped() uint64 { return sub.dropped.Load() }

// Close closes the subscriber's channel exactly once, never while a
// control send is in flight.
func (sub *Subscriber) Close() {
	sub.mu.Lock()
	if !sub.closed {
		sub.closed = true
		close(sub.ch)
	}
	sub.mu.Unlock()
}

// Send enqueues without blocking; a slow subscriber loses alert lines
// (counted) rather than stalling the engine.
func (sub *Subscriber) Send(line []byte, h *Hub) {
	select {
	case sub.ch <- line:
	default:
		sub.dropped.Add(1)
		h.dropped.Add(1)
	}
}

// SendControl enqueues a control line ("done", "ok", "err") with a bounded
// wait instead of the drop policy: losing an alert behind a slow reader is
// survivable and counted, but losing "done" would leave a replay client
// waiting forever (and losing the drop *report* with it). A subscriber
// that cannot absorb one line within the wait is beyond saving — the
// pump's write deadline will sever it. The wait holds only this
// subscriber's mutex: a stalled consumer delays its own control lines,
// never the hub lock the engine's broadcast path needs.
func (sub *Subscriber) SendControl(line []byte, h *Hub) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return
	}
	select {
	case sub.ch <- line:
	case <-time.After(5 * time.Second):
		sub.dropped.Add(1)
		h.dropped.Add(1)
	}
}

// Hub fans alert lines out to subscribers. The zero value is not ready:
// use NewHub (the Server embeds one and initializes it in New).
type Hub struct {
	mu      sync.Mutex
	subs    map[*Subscriber]struct{}
	closed  bool
	dropped atomic.Uint64
	// pumps counts live pump goroutines. Every Add happens under mu
	// strictly before CloseAll flips closed, so shutdown's Wait can never
	// race a late registration.
	pumps sync.WaitGroup
}

// NewHub builds an empty hub.
func NewHub() *Hub {
	return &Hub{subs: map[*Subscriber]struct{}{}}
}

// Dropped reports lines lost across all subscribers.
func (h *Hub) Dropped() uint64 { return h.dropped.Load() }

// WaitPumps blocks until every pump goroutine has exited; call after
// CloseAll during shutdown.
func (h *Hub) WaitPumps() { h.pumps.Wait() }

// Add registers a subscriber and accounts for its pump; false once the hub
// has shut down.
func (h *Hub) Add(sub *Subscriber) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return false
	}
	h.subs[sub] = struct{}{}
	h.pumps.Add(1)
	return true
}

// Remove reports whether the caller took the subscriber out (and therefore
// owns closing its channel).
func (h *Hub) Remove(sub *Subscriber) bool {
	h.mu.Lock()
	_, ok := h.subs[sub]
	delete(h.subs, sub)
	h.mu.Unlock()
	return ok
}

func (h *Hub) Broadcast(line []byte) {
	h.mu.Lock()
	for sub := range h.subs {
		sub.Send(line, h)
	}
	h.mu.Unlock()
}

// BroadcastControl delivers a control line to every subscriber with the
// bounded-wait policy. Subscribers are snapshotted under the hub lock but
// sent to outside it: the per-subscriber mutex (SendControl vs Close)
// makes the post-snapshot send safe, and a stalled consumer cannot hold
// the hub lock against the engine's alert broadcasts.
func (h *Hub) BroadcastControl(line []byte) {
	h.mu.Lock()
	subs := make([]*Subscriber, 0, len(h.subs))
	for sub := range h.subs {
		subs = append(subs, sub)
	}
	h.mu.Unlock()
	for _, sub := range subs {
		sub.SendControl(line, h)
	}
}

// BroadcastControlEnc delivers a control message that has both a JSON
// and a binary encoding, each encoded lazily and at most once: binary
// subscribers (a router whose links negotiated bwire) get the frame,
// everyone else the line. The worker's part emission is the hot caller.
func (h *Hub) BroadcastControlEnc(encJSON, encBin func() []byte) {
	h.mu.Lock()
	subs := make([]*Subscriber, 0, len(h.subs))
	for sub := range h.subs {
		subs = append(subs, sub)
	}
	h.mu.Unlock()
	var jl, bl []byte
	for _, sub := range subs {
		var msg []byte
		if sub.bin {
			if bl == nil {
				bl = encBin()
			}
			msg = bl
		} else {
			if jl == nil {
				jl = encJSON()
			}
			msg = jl
		}
		if msg == nil {
			continue // encoder failed; it counted the error
		}
		sub.SendControl(msg, h)
	}
}

// CloseAll detaches every remaining subscriber; their pumps flush queued
// lines and exit. Called once the engine has stopped broadcasting; no
// subscriber can register afterwards. The channel closes happen outside
// the hub lock (the per-subscriber mutex orders them against in-flight
// control sends).
func (h *Hub) CloseAll() {
	h.mu.Lock()
	h.closed = true
	subs := make([]*Subscriber, 0, len(h.subs))
	for sub := range h.subs {
		delete(h.subs, sub)
		subs = append(subs, sub)
	}
	h.mu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
}

func (h *Hub) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// BoxStatsz is one box's row in the /statsz report.
type BoxStatsz struct {
	Name string `json:"name"`
	// Agg is the pluggable-accumulator kind ("sum", "quantile", "topk")
	// for aggregation boxes — whole, partial, or merge halves alike —
	// and empty for every other operator.
	Agg string `json:"agg,omitempty"`
	In  uint64 `json:"in"`
	Out uint64 `json:"out"`
	// Queue is the box's input-channel depth in batches (live executor
	// snapshot; 0 when idle).
	Queue int `json:"queue"`
}

// EpochStatsz is one epoch's row in the /statsz report: every tracked
// epoch — running or recently finished — reports its queue pressure and
// per-box traffic and channel depths, not just the newest.
type EpochStatsz struct {
	Epoch     int         `json:"epoch"`
	Running   bool        `json:"running"`
	Recovered bool        `json:"recovered,omitempty"`
	Alerts    uint64      `json:"alerts"`
	Queue     QueueStats  `json:"queue"`
	Boxes     []BoxStatsz `json:"boxes"`
}

// CheckpointStatsz is the /statsz checkpoint section.
type CheckpointStatsz struct {
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	// LastUnixMS / LastBytes / LastDurationMS describe the most recent
	// successful checkpoint.
	LastUnixMS     int64   `json:"last_unix_ms,omitempty"`
	LastBytes      int     `json:"last_bytes,omitempty"`
	LastDurationMS float64 `json:"last_duration_ms,omitempty"`
	LastError      string  `json:"last_error,omitempty"`
	// EpochsOnDisk lists the epochs with a checkpoint in the store.
	EpochsOnDisk []int `json:"epochs_on_disk,omitempty"`
}

// Statsz is the /statsz report: engine traffic, queue pressure, and
// throughput. Cumulative rates, smoke-grade — EXPERIMENTS.md records the
// measured numbers. Epoch/Queue/Boxes describe the current epoch; Epochs
// covers every tracked epoch; Checkpoint is present when a Store is
// configured.
type Statsz struct {
	UptimeS      float64           `json:"uptime_s"`
	Epoch        int               `json:"epoch"`
	Ingested     uint64            `json:"ingested"`
	IngestErrors uint64            `json:"ingest_errors"`
	EncodeErrors uint64            `json:"encode_errors"`
	Alerts       uint64            `json:"alerts"`
	TuplesPerS   float64           `json:"tuples_per_s"`
	Queue        QueueStats        `json:"queue"`
	QueueDropped uint64            `json:"queue_dropped_total"`
	Subscribers  int               `json:"subscribers"`
	SubDropped   uint64            `json:"sub_dropped"`
	Boxes        []BoxStatsz       `json:"boxes"`
	Epochs       []EpochStatsz     `json:"epochs,omitempty"`
	Checkpoint   *CheckpointStatsz `json:"checkpoint,omitempty"`
	// Conns is the per-connection protocol section: negotiated proto,
	// message/byte counters, decode errors.
	Conns []ConnStatsz `json:"conns,omitempty"`
	// Cluster is present when the server runs as a cluster worker.
	Cluster *ClusterStatsz `json:"cluster,omitempty"`
}

func epochStatsz(ep *epoch) EpochStatsz {
	row := EpochStatsz{
		Epoch:     ep.n,
		Running:   !ep.finished.Load(),
		Recovered: ep.recovered,
		Alerts:    ep.alerts.Load(),
		Queue:     ep.queue.Stats(),
	}
	depths := ep.plan.Graph.QueueDepths()
	for i, b := range ep.plan.Graph.Boxes() {
		r := BoxStatsz{Name: b.Op.Name(), In: b.Stats().In, Out: b.Stats().Out}
		if ak, ok := b.Op.(interface{ AggKind() string }); ok {
			r.Agg = ak.AggKind()
		}
		if i < len(depths) {
			r.Queue = depths[i]
		}
		row.Boxes = append(row.Boxes, r)
	}
	return row
}

// Stats snapshots the server for monitoring.
func (s *Server) Stats() Statsz {
	up := time.Since(s.start).Seconds()
	st := Statsz{
		UptimeS:      up,
		Ingested:     s.ingested.Load(),
		IngestErrors: s.ingestErrs.Load(),
		EncodeErrors: s.encodeErrs.Load(),
		Alerts:       s.alerts.Load(),
		Subscribers:  s.hub.Count(),
		SubDropped:   s.hub.dropped.Load(),
	}
	if up > 0 {
		st.TuplesPerS = float64(st.Ingested) / up
	}
	s.mu.Lock()
	cur := s.ep
	eps := append([]*epoch(nil), s.eps...)
	st.QueueDropped = s.prunedDrops
	for c := range s.conns {
		st.Conns = append(st.Conns, c.Statsz())
	}
	s.mu.Unlock()
	sort.Slice(st.Conns, func(i, j int) bool { return st.Conns[i].Remote < st.Conns[j].Remote })
	for _, ep := range eps {
		row := epochStatsz(ep)
		st.Epochs = append(st.Epochs, row)
		st.QueueDropped += row.Queue.Dropped
		if ep == cur {
			st.Epoch, st.Queue, st.Boxes = row.Epoch, row.Queue, row.Boxes
		}
	}
	if s.cfg.Store != nil {
		ck := &CheckpointStatsz{Count: s.ckptN.Load(), Errors: s.ckptErrs.Load()}
		s.ckptMu.Lock()
		last := s.ckptLast
		s.ckptMu.Unlock()
		if !last.at.IsZero() {
			ck.LastUnixMS = last.at.UnixMilli()
			ck.LastBytes = last.bytes
			ck.LastDurationMS = float64(last.took.Microseconds()) / 1e3
		}
		ck.LastError = last.err
		if epochs, err := s.cfg.Store.List(); err == nil {
			ck.EpochsOnDisk = epochs
		}
		st.Checkpoint = ck
	}
	if s.cl != nil {
		st.Cluster = s.cl.statsz()
	}
	return st
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}
