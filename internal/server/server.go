package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/uop"
)

// Config parameterizes the ingest server.
type Config struct {
	// Addr is the TCP listen address for the JSON-lines protocol
	// (host:port; ":0" picks a free port — tests use this).
	Addr string
	// HTTPAddr, when non-empty, serves GET /statsz on a second listener.
	HTTPAddr string
	// NewPlan compiles one fresh diagram per engine epoch (required).
	// Q1Plan/Q2Plan build the standard factories.
	NewPlan func() *uop.Compiled
	// QueueCap bounds the ingest queue (default 1024).
	QueueCap int
	// Policy is the backpressure behavior of a full queue.
	Policy Policy
	// Buffer is the per-box channel buffer of the live executor.
	Buffer int
	// FlushEvery bounds quiet-graph output latency (see stream.RunLive).
	FlushEvery time.Duration
	// SubBuffer bounds each subscriber's pending-line buffer; lines beyond
	// it are dropped and counted (default 4096).
	SubBuffer int
	// Once stops the server after the first end-of-stream drain — the
	// replay/smoke-test mode.
	Once bool
}

// epoch is one continuous run of a freshly compiled plan: the engine serves
// epochs back to back, compiling a new diagram after each end-of-stream
// drain (compiled graphs are single-use).
type epoch struct {
	n      int
	plan   *uop.Compiled
	queue  *Queue
	alerts atomic.Uint64
}

// Server is the TCP/HTTP ingest front end around a continuously running
// compiled plan.
type Server struct {
	cfg    Config
	ln     net.Listener
	httpLn net.Listener

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	// done closes when the engine loop exits (after Once's drain, or on
	// shutdown).
	done chan struct{}

	hub hub

	mu       sync.Mutex
	ep       *epoch
	conns    map[net.Conn]struct{}
	shutdown bool

	start      time.Time
	ingested   atomic.Uint64
	ingestErrs atomic.Uint64
	encodeErrs atomic.Uint64
	alerts     atomic.Uint64
}

// New validates the config, binds the listeners, and starts the engine and
// accept loops. Stop with Close (graceful: the running epoch drains).
func New(cfg Config) (*Server, error) {
	if cfg.NewPlan == nil {
		return nil, errors.New("server: Config.NewPlan is required")
	}
	if cfg.Addr == "" {
		return nil, errors.New("server: Config.Addr is required")
	}
	if cfg.SubBuffer <= 0 {
		cfg.SubBuffer = 4096
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:   cfg,
		ln:    ln,
		done:  make(chan struct{}),
		conns: map[net.Conn]struct{}{},
		start: time.Now(),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.hub.subs = map[*subscriber]struct{}{}
	if cfg.HTTPAddr != "" {
		httpLn, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("server: listen %s: %w", cfg.HTTPAddr, err)
		}
		s.httpLn = httpLn
		mux := http.NewServeMux()
		mux.HandleFunc("/statsz", s.handleStatsz)
		srv := &http.Server{Handler: mux}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			srv.Serve(httpLn) // returns when the listener closes
		}()
	}
	s.wg.Add(2)
	go s.engineLoop()
	go s.acceptLoop()
	return s, nil
}

// Addr returns the protocol listener's address (for ":0" configs).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// HTTPAddr returns the /statsz listener's address, or nil.
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// Done closes when the engine loop has exited — with Config.Once, after the
// first end-of-stream drain completes and the "done" line has been
// broadcast.
func (s *Server) Done() <-chan struct{} { return s.done }

// Close shuts the server down gracefully: ingestion stops, the running
// epoch drains (open windows flush, final alerts reach subscribers,
// followed by a "done" line), and every connection closes.
func (s *Server) Close() error {
	s.cancel()
	s.ln.Close()
	if s.httpLn != nil {
		s.httpLn.Close()
	}
	// The engine must finish its drain (and the final broadcasts) before
	// subscriber channels close; the pumps must then deliver everything
	// queued before the connections close under them.
	<-s.done
	s.hub.closeAll()
	s.hub.pumps.Wait()
	// The shutdown flag closes the race with acceptLoop: a connection
	// accepted just before the listener closed but not yet registered is
	// closed by acceptLoop itself once it sees the flag, so no handler can
	// linger on a socket nobody closes.
	s.mu.Lock()
	s.shutdown = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// engineLoop serves epochs back to back: compile a fresh plan, run it live
// against a fresh ingest queue until the queue closes ("end") or the server
// shuts down, broadcast "done", repeat. Plans are never reused across
// epochs — compiled graphs are single-use.
func (s *Server) engineLoop() {
	defer s.wg.Done()
	defer close(s.done)
	for n := 0; ; n++ {
		ep := &epoch{n: n, plan: s.cfg.NewPlan(), queue: NewQueue(s.cfg.QueueCap, s.cfg.Policy)}
		ep.plan.OnResult(func(t *stream.Tuple) { s.emitAlert(ep, t) })
		s.mu.Lock()
		s.ep = ep
		s.mu.Unlock()
		err := ep.plan.RunLive(s.ctx, s.cfg.Buffer, ep.queue, s.cfg.FlushEvery)
		ep.queue.Close() // idempotent; ensures producers fail fast after a cancel
		s.hub.broadcastControl(mustLine(Msg{Kind: KindDone, Alerts: ep.alerts.Load()}))
		if err != nil || s.cfg.Once || s.ctx.Err() != nil {
			return
		}
	}
}

// emitAlert runs on the sink box's goroutine: encode once, hand the line to
// every subscriber. Encoding failures are counted, never fatal — this
// goroutine is the engine.
func (s *Server) emitAlert(ep *epoch, t *stream.Tuple) {
	m, err := AlertMsg(t)
	if err != nil {
		s.encodeErrs.Add(1)
		return
	}
	line, err := EncodeLine(m)
	if err != nil {
		s.encodeErrs.Add(1)
		return
	}
	ep.alerts.Add(1)
	s.alerts.Add(1)
	s.hub.broadcast(line)
}

func mustLine(m Msg) []byte {
	line, err := EncodeLine(m)
	if err != nil {
		panic(err) // fixed-shape control messages always encode
	}
	return line
}

// epoch returns the current epoch.
func (s *Server) epoch() *epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ep
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// handleConn reads protocol lines from one connection. Errors are strictly
// per-connection: a malformed line earns an "err" reply and the connection
// (and every other connection, and the engine) keeps running.
func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	w := bufio.NewWriter(c)
	var sub *subscriber
	defer func() {
		if sub != nil && s.hub.remove(sub) {
			sub.close()
		}
	}()
	// reply writes a control message to the client. Before subscribing it
	// owns the connection's writer; after, the pump goroutine does, so
	// replies ride the subscriber queue instead.
	reply := func(m Msg) {
		line, err := EncodeLine(m)
		if err != nil {
			return
		}
		if sub != nil {
			sub.sendControl(line, &s.hub)
			return
		}
		w.Write(line)
		w.Flush()
	}
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var m Msg
		if err := json.Unmarshal(line, &m); err != nil {
			s.ingestErrs.Add(1)
			reply(errMsg("bad line: %v", err))
			continue
		}
		switch m.Kind {
		case KindTuple:
			if err := s.ingest(m); err != nil {
				s.ingestErrs.Add(1)
				reply(errMsg("%v", err))
				continue
			}
			s.ingested.Add(1)
		case KindSub:
			if sub != nil {
				reply(errMsg("already subscribed"))
				continue
			}
			newSub := &subscriber{ch: make(chan []byte, s.cfg.SubBuffer)}
			if !s.hub.add(newSub) {
				reply(errMsg("server shutting down"))
				continue
			}
			// Ack while the handler still owns the writer, then hand it to
			// the pump.
			w.Write(mustLine(Msg{Kind: KindOK}))
			w.Flush()
			sub = newSub
			go s.pumpSub(c, w, sub)
		case KindEnd:
			ep := s.epoch()
			if ep == nil {
				reply(errMsg("no epoch running"))
				continue
			}
			ep.queue.Close()
			reply(Msg{Kind: KindOK})
		default:
			s.ingestErrs.Add(1)
			reply(errMsg("unknown kind %q", m.Kind))
		}
	}
	// A scan error (oversized line, mid-line disconnect) ends the
	// connection, but it still deserves the per-connection error contract:
	// count it and make a best-effort reply before the socket closes, so a
	// client sees why instead of a bare EOF.
	if err := sc.Err(); err != nil {
		s.ingestErrs.Add(1)
		reply(errMsg("read error: %v", err))
	}
}

// ingest parses and enqueues one tuple line. A tuple that lands in the gap
// between epochs — the previous stream drained, the next plan still
// compiling — waits briefly for the new epoch instead of failing, so back-
// to-back replays never lose their first tuples.
func (s *Server) ingest(m Msg) error {
	u, err := ParseTuple(m)
	if err != nil {
		return err
	}
	source := m.Source
	if source == "" {
		source = "locations"
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ep := s.epoch()
		if ep != nil {
			box, port, ok := ep.plan.LookupSource(source)
			if !ok {
				return fmt.Errorf("unknown source %q", source)
			}
			err := ep.queue.Put(s.ctx, stream.SourceTuple{Box: box, Port: port, T: core.Wrap(u)})
			if !errors.Is(err, ErrQueueClosed) {
				return err
			}
		}
		if s.ctx.Err() != nil {
			return ErrQueueClosed
		}
		select {
		case <-s.done:
			// The engine loop has exited (Once mode, or shutdown): no next
			// epoch is coming, so waiting out the deadline would just hang
			// the client 5 s per tuple.
			return errors.New("engine stopped; no further streams accepted")
		default:
		}
		if time.Now().After(deadline) {
			return errors.New("stream draining; retry")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// pumpSub owns the connection's writer after subscription: it streams
// queued lines, flushing whenever the queue momentarily empties (the same
// flush-on-idle rule the engine's batches follow, for the same latency
// reason).
func (s *Server) pumpSub(c net.Conn, w *bufio.Writer, sub *subscriber) {
	defer s.hub.pumps.Done()
	for line := range sub.ch {
		// Bound each write so a subscriber that stopped reading cannot
		// wedge shutdown behind a full TCP buffer.
		c.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := w.Write(line); err != nil {
			c.Close() // wake the read loop; hub removal happens there
			return
		}
		if len(sub.ch) == 0 {
			if err := w.Flush(); err != nil {
				c.Close()
				return
			}
		}
	}
	w.Flush()
}

// subscriber is one alert-stream consumer.
type subscriber struct {
	ch      chan []byte
	dropped atomic.Uint64
	// mu guards closed and serializes bounded-wait control sends against
	// the channel close — per subscriber, so one slow consumer can never
	// hold a lock the engine's alert broadcast needs.
	mu     sync.Mutex
	closed bool
}

// close closes the subscriber's channel exactly once, never while a
// control send is in flight.
func (sub *subscriber) close() {
	sub.mu.Lock()
	if !sub.closed {
		sub.closed = true
		close(sub.ch)
	}
	sub.mu.Unlock()
}

// send enqueues without blocking; a slow subscriber loses alert lines
// (counted) rather than stalling the engine.
func (sub *subscriber) send(line []byte, h *hub) {
	select {
	case sub.ch <- line:
	default:
		sub.dropped.Add(1)
		h.dropped.Add(1)
	}
}

// sendControl enqueues a control line ("done", "ok", "err") with a bounded
// wait instead of the drop policy: losing an alert behind a slow reader is
// survivable and counted, but losing "done" would leave a replay client
// waiting forever (and losing the drop *report* with it). A subscriber
// that cannot absorb one line within the wait is beyond saving — the
// pump's write deadline will sever it. The wait holds only this
// subscriber's mutex: a stalled consumer delays its own control lines,
// never the hub lock the engine's broadcast path needs.
func (sub *subscriber) sendControl(line []byte, h *hub) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return
	}
	select {
	case sub.ch <- line:
	case <-time.After(5 * time.Second):
		sub.dropped.Add(1)
		h.dropped.Add(1)
	}
}

// hub fans alert lines out to subscribers.
type hub struct {
	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	closed  bool
	dropped atomic.Uint64
	// pumps counts live pump goroutines. Every Add happens under mu
	// strictly before closeAll flips closed, so shutdown's Wait can never
	// race a late registration.
	pumps sync.WaitGroup
}

// add registers a subscriber and accounts for its pump; false once the hub
// has shut down.
func (h *hub) add(sub *subscriber) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return false
	}
	h.subs[sub] = struct{}{}
	h.pumps.Add(1)
	return true
}

// remove reports whether the caller took the subscriber out (and therefore
// owns closing its channel).
func (h *hub) remove(sub *subscriber) bool {
	h.mu.Lock()
	_, ok := h.subs[sub]
	delete(h.subs, sub)
	h.mu.Unlock()
	return ok
}

func (h *hub) broadcast(line []byte) {
	h.mu.Lock()
	for sub := range h.subs {
		sub.send(line, h)
	}
	h.mu.Unlock()
}

// broadcastControl delivers a control line to every subscriber with the
// bounded-wait policy. Subscribers are snapshotted under the hub lock but
// sent to outside it: the per-subscriber mutex (sendControl vs close)
// makes the post-snapshot send safe, and a stalled consumer cannot hold
// the hub lock against the engine's alert broadcasts.
func (h *hub) broadcastControl(line []byte) {
	h.mu.Lock()
	subs := make([]*subscriber, 0, len(h.subs))
	for sub := range h.subs {
		subs = append(subs, sub)
	}
	h.mu.Unlock()
	for _, sub := range subs {
		sub.sendControl(line, h)
	}
}

// closeAll detaches every remaining subscriber; their pumps flush queued
// lines and exit. Called once the engine has stopped broadcasting; no
// subscriber can register afterwards. The channel closes happen outside
// the hub lock (the per-subscriber mutex orders them against in-flight
// control sends).
func (h *hub) closeAll() {
	h.mu.Lock()
	h.closed = true
	subs := make([]*subscriber, 0, len(h.subs))
	for sub := range h.subs {
		delete(h.subs, sub)
		subs = append(subs, sub)
	}
	h.mu.Unlock()
	for _, sub := range subs {
		sub.close()
	}
}

func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// BoxStatsz is one box's row in the /statsz report.
type BoxStatsz struct {
	Name string `json:"name"`
	In   uint64 `json:"in"`
	Out  uint64 `json:"out"`
	// Queue is the box's input-channel depth in batches (live executor
	// snapshot; 0 when idle).
	Queue int `json:"queue"`
}

// Statsz is the /statsz report: engine traffic, queue pressure, and
// throughput. Cumulative rates, smoke-grade — EXPERIMENTS.md records the
// measured numbers.
type Statsz struct {
	UptimeS      float64     `json:"uptime_s"`
	Epoch        int         `json:"epoch"`
	Ingested     uint64      `json:"ingested"`
	IngestErrors uint64      `json:"ingest_errors"`
	EncodeErrors uint64      `json:"encode_errors"`
	Alerts       uint64      `json:"alerts"`
	TuplesPerS   float64     `json:"tuples_per_s"`
	Queue        QueueStats  `json:"queue"`
	Subscribers  int         `json:"subscribers"`
	SubDropped   uint64      `json:"sub_dropped"`
	Boxes        []BoxStatsz `json:"boxes"`
}

// Stats snapshots the server for monitoring.
func (s *Server) Stats() Statsz {
	up := time.Since(s.start).Seconds()
	st := Statsz{
		UptimeS:      up,
		Ingested:     s.ingested.Load(),
		IngestErrors: s.ingestErrs.Load(),
		EncodeErrors: s.encodeErrs.Load(),
		Alerts:       s.alerts.Load(),
		Subscribers:  s.hub.count(),
		SubDropped:   s.hub.dropped.Load(),
	}
	if up > 0 {
		st.TuplesPerS = float64(st.Ingested) / up
	}
	if ep := s.epoch(); ep != nil {
		st.Epoch = ep.n
		st.Queue = ep.queue.Stats()
		depths := ep.plan.Graph.QueueDepths()
		for i, b := range ep.plan.Graph.Boxes() {
			row := BoxStatsz{Name: b.Op.Name(), In: b.Stats().In, Out: b.Stats().Out}
			if i < len(depths) {
				row.Queue = depths[i]
			}
			st.Boxes = append(st.Boxes, row)
		}
	}
	return st
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}
