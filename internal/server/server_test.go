package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rfid"
	"repro/internal/stream"
	"repro/internal/uop"
)

// testQ1Config is the plan both the daemon and the offline reference use;
// sharded live execution must reproduce the unsharded sync run byte for
// byte.
func testQ1Config(shards int) uop.Q1Config {
	return uop.Q1Config{
		WindowMS:     5 * stream.Second,
		ThresholdLbs: 120,
		AreaFt:       10,
		Strategy:     core.CFApprox,
		MinAlertProb: 0.5,
		Shards:       shards,
	}
}

// wireTrace runs the RFID T operator on a seeded trace and encodes every
// location tuple as a wire message — the exact stream cmd/rfidtrace -replay
// sends.
func wireTrace(t testing.TB, objects, events int) []Msg {
	t.Helper()
	w := rfid.NewWarehouse(rfid.WarehouseConfig{NumObjects: objects, Seed: 41, MoveProb: -1})
	trace := rfid.GenerateTrace(w, rfid.Reader{}, rfid.TraceConfig{Events: events, Seed: 42})
	tx := rfid.NewTransformer(w, rfid.SensingConfig{}, rfid.TransformerConfig{
		Particles: 50, UseIndex: true, NegativeEvidence: true, Seed: 43,
	})
	var msgs []Msg
	for _, ev := range trace.Events {
		for _, lt := range tx.Process(ev) {
			msgs = append(msgs, Msg{
				Kind:   KindTuple,
				Source: "locations",
				T:      int64(lt.T),
				Keys:   map[string]int64{"tag": lt.TagID},
				Attrs: map[string]Attr{
					"x":      DistAttr(lt.X),
					"y":      DistAttr(lt.Y),
					"z":      DistAttr(lt.Z),
					"weight": PointAttr(w.Weight(lt.TagID)),
				},
			})
		}
	}
	if len(msgs) == 0 {
		t.Fatal("T operator emitted no location tuples")
	}
	return msgs
}

// offlineAlertLines runs the wire tuples through an unsharded synchronous
// plan — Push then Close — and returns the encoded alert lines: the
// reference a live replay must match byte for byte.
func offlineAlertLines(t testing.TB, msgs []Msg, cfg uop.Q1Config) []string {
	t.Helper()
	cfg.Shards = 0
	c := uop.BuildQ1(cfg).Compile()
	var lines []string
	collect := func(ts []*stream.Tuple) {
		for _, tp := range ts {
			m, err := AlertMsg(tp)
			if err != nil {
				t.Fatalf("encode alert: %v", err)
			}
			line, err := EncodeLine(m)
			if err != nil {
				t.Fatalf("encode line: %v", err)
			}
			lines = append(lines, string(line))
		}
	}
	for _, m := range msgs {
		u, err := ParseTuple(m)
		if err != nil {
			t.Fatalf("parse wire tuple: %v", err)
		}
		c.Push("locations", u)
		collect(c.Results())
	}
	collect(c.Close())
	return lines
}

// testClient is a line-oriented protocol client.
type testClient struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func dialServer(t *testing.T, s *Server) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testClient{t: t, conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

func (c *testClient) send(m Msg) {
	c.t.Helper()
	line, err := EncodeLine(m)
	if err != nil {
		c.t.Fatalf("encode: %v", err)
	}
	if _, err := c.w.Write(line); err != nil {
		c.t.Fatalf("send: %v", err)
	}
	if err := c.w.Flush(); err != nil {
		c.t.Fatalf("flush: %v", err)
	}
}

func (c *testClient) sendRaw(line string) {
	c.t.Helper()
	if _, err := c.w.WriteString(line + "\n"); err != nil {
		c.t.Fatalf("send raw: %v", err)
	}
	if err := c.w.Flush(); err != nil {
		c.t.Fatalf("flush: %v", err)
	}
}

// recv reads one message within the deadline.
func (c *testClient) recv(within time.Duration) Msg {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(within))
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		c.t.Fatalf("recv: %v", err)
	}
	var m Msg
	if err := json.Unmarshal(line, &m); err != nil {
		c.t.Fatalf("recv: bad line %q: %v", line, err)
	}
	return m
}

// recvLine reads one raw line within the deadline.
func (c *testClient) recvLine(within time.Duration) string {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(within))
	line, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatalf("recv line: %v", err)
	}
	return line
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestServerReplayByteIdentical is the acceptance test: replaying a seeded
// wire trace through the daemon's sharded live plan yields exactly the
// bytes of the offline unsharded synchronous run — transport batching,
// sharding, and continuous execution add nothing and lose nothing.
func TestServerReplayByteIdentical(t *testing.T) {
	msgs := wireTrace(t, 40, 300)
	ref := offlineAlertLines(t, msgs, testQ1Config(0))
	if len(ref) == 0 {
		t.Fatal("offline reference produced no alerts")
	}

	s := newTestServer(t, Config{
		NewPlan:    Q1Plan(testQ1Config(2)),
		FlushEvery: 20 * time.Millisecond,
	})
	sub := dialServer(t, s)
	sub.send(Msg{Kind: KindSub})
	if m := sub.recv(5 * time.Second); m.Kind != KindOK {
		t.Fatalf("subscribe: got %+v", m)
	}
	ingest := dialServer(t, s)
	for _, m := range msgs {
		ingest.send(m)
	}
	ingest.send(Msg{Kind: KindEnd})
	if m := ingest.recv(30 * time.Second); m.Kind != KindOK {
		t.Fatalf("end: got %+v", m)
	}

	var got []string
	for {
		line := sub.recvLine(30 * time.Second)
		var m Msg
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad alert line %q: %v", line, err)
		}
		if m.Kind == KindDone {
			if m.AlertCount() != uint64(len(got)) {
				t.Fatalf("done reports %d alerts, subscriber saw %d", m.AlertCount(), len(got))
			}
			break
		}
		got = append(got, line)
	}
	if strings.Join(got, "") != strings.Join(ref, "") {
		t.Fatalf("live alerts diverge from offline reference:\nref (%d):\n%s\ngot (%d):\n%s",
			len(ref), strings.Join(ref, ""), len(got), strings.Join(got, ""))
	}
}

// locMsgAt builds a handcrafted location wire tuple.
func locMsgAt(tms int64, tag int64, x, y, weight float64) Msg {
	return Msg{
		Kind: KindTuple, Source: "locations", T: tms,
		Keys: map[string]int64{"tag": tag},
		Attrs: map[string]Attr{
			"x": {Mean: x, Std: 1}, "y": {Mean: y, Std: 1},
			"z": PointAttr(2), "weight": PointAttr(weight),
		},
	}
}

// TestServerAlertWithoutEnd is the wire-level latency regression test of
// the acceptance criterion: a sparse live stream — far below the 64-tuple
// watermark cadence and the 32-tuple transport batches — must deliver its
// alert to a subscriber while the stream stays open: no "end", no Close, no
// flush of any kind.
func TestServerAlertWithoutEnd(t *testing.T) {
	s := newTestServer(t, Config{
		NewPlan:    Q1Plan(testQ1Config(2)),
		FlushEvery: 20 * time.Millisecond,
	})
	sub := dialServer(t, s)
	sub.send(Msg{Kind: KindSub})
	if m := sub.recv(5 * time.Second); m.Kind != KindOK {
		t.Fatalf("subscribe: got %+v", m)
	}
	ingest := dialServer(t, s)
	// Three heavy tuples in window [0, 5000), then a single tuple past the
	// boundary to close it. Four tuples total: every transport batch stays
	// partial, every watermark cadence stays unmet.
	for i := int64(0); i < 3; i++ {
		ingest.send(locMsgAt(i*100, i+1, 5, 5, 200))
	}
	start := time.Now()
	ingest.send(locMsgAt(6000, 99, 5, 5, 200))

	m := sub.recv(5 * time.Second) // recv enforces the latency bound
	if m.Kind != KindAlert {
		t.Fatalf("expected an alert, got %+v", m)
	}
	if m.T != 5000 {
		t.Errorf("alert window end %d, want 5000", m.T)
	}
	if m.P == nil || *m.P < 0.5 {
		t.Errorf("alert probability %v, want >= 0.5", m.P)
	}
	t.Logf("end-to-end alert latency (boundary tuple write → subscriber read): %v", time.Since(start))
}

// TestServerMalformedLines: every bad line is a per-connection error reply
// — the connection, the engine, and other clients keep working, and a
// subsequent valid stream still produces its alert.
func TestServerMalformedLines(t *testing.T) {
	s := newTestServer(t, Config{
		NewPlan:    Q1Plan(testQ1Config(2)),
		FlushEvery: 20 * time.Millisecond,
	})
	c := dialServer(t, s)
	bad := []string{
		`this is not json`,
		`{"kind":"tuple","t_ms":100}`,                                                  // no attrs
		`{"kind":"tuple","t_ms":100,"attrs":{"x":[1,-2],"weight":140}}`,                // negative std
		`{"kind":"tuple","t_ms":100,"attrs":{"x":{"not":"an attr"},"weight":140}}`,     // wrong attr shape
		`{"kind":"tuple","t_ms":-5,"attrs":{"x":1,"weight":140}}`,                      // negative time
		`{"kind":"tuple","source":"nonexistent","t_ms":100,"attrs":{"x":1}}`,           // unknown source
		`{"kind":"frobnicate"}`,                                                        // unknown kind
	}
	for _, line := range bad {
		c.sendRaw(line)
		if m := c.recv(5 * time.Second); m.Kind != KindErr || m.Error == "" {
			t.Fatalf("line %q: expected err reply, got %+v", line, m)
		}
	}
	if got := s.Stats().IngestErrors; got != uint64(len(bad)) {
		t.Errorf("ingest_errors = %d, want %d", got, len(bad))
	}

	// The same connection still ingests; the engine still alerts.
	sub := dialServer(t, s)
	sub.send(Msg{Kind: KindSub})
	if m := sub.recv(5 * time.Second); m.Kind != KindOK {
		t.Fatalf("subscribe: got %+v", m)
	}
	for i := int64(0); i < 3; i++ {
		c.send(locMsgAt(i*100, i+1, 5, 5, 200))
	}
	c.send(locMsgAt(6000, 99, 5, 5, 200))
	if m := sub.recv(5 * time.Second); m.Kind != KindAlert {
		t.Fatalf("after malformed lines, expected an alert, got %+v", m)
	}
}

// TestServerStatsz: the HTTP endpoint reports engine boxes, queue state,
// and counters consistent with the traffic served.
func TestServerStatsz(t *testing.T) {
	s := newTestServer(t, Config{
		HTTPAddr:   "127.0.0.1:0",
		NewPlan:    Q1Plan(testQ1Config(2)),
		FlushEvery: 20 * time.Millisecond,
	})
	c := dialServer(t, s)
	for i := int64(0); i < 5; i++ {
		c.send(locMsgAt(i*100, i+1, 5, 5, 100))
	}
	// Wait until the engine has drained the queue into the plan.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Ingested < 5 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/statsz", s.HTTPAddr()))
	if err != nil {
		t.Fatalf("GET /statsz: %v", err)
	}
	defer resp.Body.Close()
	var st Statsz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode statsz: %v", err)
	}
	if st.Ingested != 5 {
		t.Errorf("statsz ingested = %d, want 5", st.Ingested)
	}
	if len(st.Boxes) == 0 {
		t.Error("statsz reports no boxes")
	}
	var sourceIn uint64
	for _, b := range st.Boxes {
		if strings.HasPrefix(b.Name, "⇉") {
			sourceIn += b.In
		}
	}
	if sourceIn == 0 {
		t.Errorf("statsz partition boxes saw no traffic: %+v", st.Boxes)
	}
	if st.Queue.Capacity == 0 {
		t.Error("statsz queue capacity is 0")
	}
	if st.TuplesPerS <= 0 {
		t.Error("statsz tuples_per_s is 0")
	}
}

// TestServerGracefulShutdownDrains: Close while a window is open must
// flush it — the final alerts and the done line reach subscribers before
// their connections close.
func TestServerGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t, Config{
		NewPlan:    Q1Plan(testQ1Config(2)),
		FlushEvery: 20 * time.Millisecond,
	})
	sub := dialServer(t, s)
	sub.send(Msg{Kind: KindSub})
	if m := sub.recv(5 * time.Second); m.Kind != KindOK {
		t.Fatalf("subscribe: got %+v", m)
	}
	ingest := dialServer(t, s)
	for i := int64(0); i < 3; i++ {
		ingest.send(locMsgAt(i*100, i+1, 5, 5, 200))
	}
	// Wait for ingestion, then shut down with the window still open.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Ingested < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	go s.Close()

	var sawAlert, sawDone bool
	for !sawDone {
		m := sub.recv(10 * time.Second)
		switch m.Kind {
		case KindAlert:
			sawAlert = true
		case KindDone:
			sawDone = true
		}
	}
	if !sawAlert {
		t.Error("graceful shutdown did not flush the open window's alert")
	}
}

func TestQueueDropOldest(t *testing.T) {
	q := NewQueue(4, DropOldest)
	ctx := context.Background()
	mk := func(i int) stream.SourceTuple {
		return stream.SourceTuple{T: stream.NewTuple(stream.NewSchema("v"), stream.Time(i), int64(i))}
	}
	for i := 0; i < 10; i++ {
		if err := q.Put(ctx, mk(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	st := q.Stats()
	if st.Accepted != 10 || st.Dropped != 6 || st.Depth != 4 {
		t.Fatalf("stats %+v, want accepted 10, dropped 6, depth 4", st)
	}
	q.Close()
	var vals []int64
	for tp := range q.Tuples() {
		vals = append(vals, tp.T.Fields[0].(int64))
	}
	if len(vals) != 4 || vals[0] != 6 || vals[3] != 9 {
		t.Fatalf("drained %v, want the newest four [6 7 8 9]", vals)
	}
	if err := q.Put(ctx, mk(99)); err != ErrQueueClosed {
		t.Fatalf("Put after Close: %v, want ErrQueueClosed", err)
	}
}

func TestQueueBlockBackpressure(t *testing.T) {
	q := NewQueue(2, Block)
	mk := func(i int) stream.SourceTuple {
		return stream.SourceTuple{T: stream.NewTuple(stream.NewSchema("v"), stream.Time(i), int64(i))}
	}
	ctx := context.Background()
	if err := q.Put(ctx, mk(0)); err != nil {
		t.Fatal(err)
	}
	if err := q.Put(ctx, mk(1)); err != nil {
		t.Fatal(err)
	}
	// Full queue: Put must block until cancelled — nothing is dropped.
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := q.Put(short, mk(2)); err != context.DeadlineExceeded {
		t.Fatalf("Put on full queue: %v, want DeadlineExceeded", err)
	}
	if st := q.Stats(); st.Dropped != 0 || st.Accepted != 2 {
		t.Fatalf("stats %+v: block policy must not drop", st)
	}
	// A blocked Put must settle before Close closes the channel.
	done := make(chan error, 1)
	go func() { done <- q.Put(ctx, mk(3)) }()
	time.Sleep(20 * time.Millisecond)
	<-q.Tuples() // make room: the blocked Put completes
	if err := <-done; err != nil {
		t.Fatalf("unblocked Put: %v", err)
	}
	q.Close()
	n := 0
	for range q.Tuples() {
		n++
	}
	if n != 2 {
		t.Fatalf("drained %d tuples after close, want 2", n)
	}
}

// TestAttrUnmarshalStrict pins the wire boundary's array arity check: Go's
// lenient array decoding must not turn a malformed attr into a silent
// certain zero.
func TestAttrUnmarshalStrict(t *testing.T) {
	var a Attr
	for _, bad := range []string{`[]`, `[1]`, `[1,2,3]`, `"five"`, `{"mean":1}`} {
		if err := json.Unmarshal([]byte(bad), &a); err == nil {
			t.Errorf("attr %s decoded without error (as %+v)", bad, a)
		}
	}
	if err := json.Unmarshal([]byte(`7.5`), &a); err != nil || a != (Attr{Mean: 7.5}) {
		t.Errorf("number attr: %+v, %v", a, err)
	}
	if err := json.Unmarshal([]byte(`[3,0.5]`), &a); err != nil || a != (Attr{Mean: 3, Std: 0.5}) {
		t.Errorf("pair attr: %+v, %v", a, err)
	}
}
