package server

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"
)

// encodeBinary runs msgs through a fresh BwBatcher — schema frames
// interleaved with batched TUPLES frames, exactly the byte stream a
// binary replay session sends.
func encodeBinary(t testing.TB, msgs []Msg) []byte {
	t.Helper()
	bb := NewBwBatcher()
	for _, m := range msgs {
		if err := bb.Add(m); err != nil {
			t.Fatalf("batch tuple: %v", err)
		}
	}
	return bb.Take()
}

// decodeBinary feeds an encoded stream back through WireReader+BwDecoder
// and returns every tuple as its JSON-protocol Msg equivalent.
func decodeBinary(t testing.TB, raw []byte) []Msg {
	t.Helper()
	wr := NewWireReader(bytes.NewReader(raw), 0)
	dec := NewBwDecoder()
	var out []Msg
	for {
		line, fr, err := wr.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		if line != nil {
			t.Fatalf("unexpected line in binary stream: %q", line)
		}
		switch fr.Kind {
		case BwSchemaFrame:
			if _, err := dec.AddSchema(fr.Payload); err != nil {
				t.Fatalf("add schema: %v", err)
			}
		case BwTuples:
			bts, err := dec.DecodeTuples(fr.Payload)
			if err != nil {
				t.Fatalf("decode tuples: %v", err)
			}
			for i := range bts {
				out = append(out, bts[i].Msg())
			}
		default:
			t.Fatalf("unexpected frame kind %#x", fr.Kind)
		}
	}
}

// TestBwireRoundTrip: encoding a realistic wire trace and decoding it
// back yields Msgs identical to the originals — the binary path carries
// exactly what the JSON path carries.
func TestBwireRoundTrip(t *testing.T) {
	msgs := wireTrace(t, 10, 60)
	got := decodeBinary(t, encodeBinary(t, msgs))
	if len(got) != len(msgs) {
		t.Fatalf("round trip returned %d msgs, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !reflect.DeepEqual(got[i], msgs[i]) {
			t.Fatalf("msg %d diverged:\n got %+v\nwant %+v", i, got[i], msgs[i])
		}
	}
}

// TestBwireUTupleMatchesParseTuple: the zero-alloc lift (BwTuple.UTuple)
// must build the same engine tuple as the JSON path's ParseTuple.
func TestBwireUTupleMatchesParseTuple(t *testing.T) {
	msgs := wireTrace(t, 10, 60)
	raw := encodeBinary(t, msgs)
	wr := NewWireReader(bytes.NewReader(raw), 0)
	dec := NewBwDecoder()
	i := 0
	for {
		_, fr, err := wr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		if fr.Kind == BwSchemaFrame {
			if _, err := dec.AddSchema(fr.Payload); err != nil {
				t.Fatalf("add schema: %v", err)
			}
			continue
		}
		bts, err := dec.DecodeTuples(fr.Payload)
		if err != nil {
			t.Fatalf("decode tuples: %v", err)
		}
		for j := range bts {
			want, err := ParseTuple(msgs[i])
			if err != nil {
				t.Fatalf("ParseTuple msg %d: %v", i, err)
			}
			got, err := bts[j].UTuple()
			if err != nil {
				t.Fatalf("UTuple msg %d: %v", i, err)
			}
			if got.TS != want.TS || !reflect.DeepEqual(got.Keys, want.Keys) ||
				!reflect.DeepEqual(got.Names(), want.Names()) {
				t.Fatalf("tuple %d diverged:\n got %+v\nwant %+v", i, got, want)
			}
			for _, name := range want.Names() {
				if !reflect.DeepEqual(got.Attr(name), want.Attr(name)) {
					t.Fatalf("tuple %d attr %q diverged: got %+v want %+v",
						i, name, got.Attr(name), want.Attr(name))
				}
			}
			i++
		}
	}
	if i != len(msgs) {
		t.Fatalf("decoded %d tuples, want %d", i, len(msgs))
	}
}

// TestBwireCanonicalReencode: decode→encode is a fixpoint for frames the
// encoder produced — EncodeTuplesFrame(decode(f)) == f byte for byte.
func TestBwireCanonicalReencode(t *testing.T) {
	raw := encodeBinary(t, wireTrace(t, 10, 60))
	wr := NewWireReader(bytes.NewReader(raw), 0)
	dec := NewBwDecoder()
	frames := 0
	for {
		_, fr, err := wr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		if fr.Kind == BwSchemaFrame {
			sc, err := dec.AddSchema(fr.Payload)
			if err != nil {
				t.Fatalf("add schema: %v", err)
			}
			if got := sc.EncodeFrame(); !bytes.Equal(got[bwHeaderLen:], fr.Payload) {
				t.Fatalf("schema %d re-encode diverged", sc.ID)
			}
			continue
		}
		bts, err := dec.DecodeTuples(fr.Payload)
		if err != nil {
			t.Fatalf("decode tuples: %v", err)
		}
		re := EncodeTuplesFrame(bts[0].Schema, bts)
		if !bytes.Equal(re[bwHeaderLen:], fr.Payload) {
			t.Fatalf("tuples frame re-encode diverged:\n got % x\nwant % x", re[bwHeaderLen:], fr.Payload)
		}
		frames++
	}
	if frames == 0 {
		t.Fatal("no tuples frames decoded")
	}
}

// TestBwireSchemaRejects: structurally invalid schema frames must fail
// at registration, not corrupt later decodes.
func TestBwireSchemaRejects(t *testing.T) {
	enc := func(id uint64, source string, keys, attrs []string) []byte {
		sc := &BwSchema{ID: id, Source: source, KeyNames: keys, AttrNames: attrs}
		f := sc.EncodeFrame()
		return f[bwHeaderLen:]
	}
	cases := []struct {
		name    string
		payload []byte
	}{
		{"unsorted keys", enc(1, "locations", []string{"b", "a"}, []string{"x"})},
		{"duplicate keys", enc(1, "locations", []string{"tag", "tag"}, []string{"x"})},
		{"unsorted attrs", enc(1, "locations", nil, []string{"y", "x"})},
		{"empty attr name", enc(1, "locations", nil, []string{""})},
		{"no attrs", enc(1, "locations", []string{"tag"}, nil)},
		{"truncated", enc(1, "locations", nil, []string{"x"})[:2]},
	}
	for _, tc := range cases {
		d := NewBwDecoder()
		if _, err := d.AddSchema(tc.payload); err == nil {
			t.Errorf("%s: schema accepted, want error", tc.name)
		}
	}

	// Redefining an id is a protocol error even with identical contents.
	d := NewBwDecoder()
	ok := enc(7, "locations", []string{"tag"}, []string{"x"})
	if _, err := d.AddSchema(ok); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	if _, err := d.AddSchema(ok); err == nil {
		t.Error("schema id redefinition accepted, want error")
	}
}

// TestBwireDecodeTuplesRejects: malformed TUPLES payloads fail cleanly.
func TestBwireDecodeTuplesRejects(t *testing.T) {
	d := NewBwDecoder()
	sc := &BwSchema{ID: 1, Source: "locations", KeyNames: []string{"tag"}, AttrNames: []string{"x"}}
	f := sc.EncodeFrame()
	if _, err := d.AddSchema(f[bwHeaderLen:]); err != nil {
		t.Fatalf("add schema: %v", err)
	}
	valid := EncodeTuplesFrame(sc, []BwTuple{{
		Schema: sc, T: 100, Shard: -1, Keys: []int64{5}, Attrs: []Attr{{Mean: 1, Std: 2}},
	}})[bwHeaderLen:]
	if _, err := d.DecodeTuples(valid); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}

	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"unknown schema", append([]byte{0x63}, valid[1:]...)},
		{"zero count", append([]byte{valid[0], 0}, valid[2:]...)},
		{"count exceeds payload", append([]byte{valid[0], 0x40}, valid[2:]...)},
		{"unknown flags", append([]byte{valid[0], valid[1], 0x80}, valid[3:]...)},
		{"truncated body", valid[:len(valid)-4]},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xEE)},
	}
	for _, tc := range cases {
		if _, err := d.DecodeTuples(tc.payload); err == nil {
			t.Errorf("%s: payload accepted, want error", tc.name)
		}
	}
}

// TestBwireDecodeAllocs pins the tentpole's core claim: steady-state
// tuple decoding allocates nothing — the schema table, tuple scratch,
// and key/attr scratch are all reused across frames.
func TestBwireDecodeAllocs(t *testing.T) {
	msgs := wireTrace(t, 10, 60)
	raw := encodeBinary(t, msgs)
	// Collect the tuples-frame payloads once (copies: decode scratch must
	// not alias the reader buffer for this test's repeated replay).
	wr := NewWireReader(bytes.NewReader(raw), 0)
	dec := NewBwDecoder()
	var payloads [][]byte
	for {
		_, fr, err := wr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		if fr.Kind == BwSchemaFrame {
			if _, err := dec.AddSchema(fr.Payload); err != nil {
				t.Fatalf("add schema: %v", err)
			}
			continue
		}
		payloads = append(payloads, append([]byte(nil), fr.Payload...))
	}
	if len(payloads) == 0 {
		t.Fatal("no tuples frames")
	}
	// Warm the decoder scratch, then demand zero allocations per frame.
	for _, p := range payloads {
		if _, err := dec.DecodeTuples(p); err != nil {
			t.Fatalf("warmup decode: %v", err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		for _, p := range payloads {
			if _, err := dec.DecodeTuples(p); err != nil {
				t.Fatalf("decode: %v", err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state DecodeTuples allocates %.1f allocs per replay, want 0", avg)
	}
}

// sendFrames writes raw binary frame bytes on the test client's
// connection, interleaving with its JSON lines.
func (c *testClient) sendFrames(raw []byte) {
	c.t.Helper()
	if _, err := c.w.Write(raw); err != nil {
		c.t.Fatalf("send frames: %v", err)
	}
	if err := c.w.Flush(); err != nil {
		c.t.Fatalf("flush: %v", err)
	}
}

// collectAlertsUntilDone drains the subscriber until the done line,
// checking the done alert count against what was seen.
func collectAlertsUntilDone(t *testing.T, sub *testClient) []string {
	t.Helper()
	var got []string
	for {
		line := sub.recvLine(30 * time.Second)
		var m Msg
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad alert line %q: %v", line, err)
		}
		if m.Kind == KindDone {
			if m.AlertCount() != uint64(len(got)) {
				t.Fatalf("done reports %d alerts, subscriber saw %d", m.AlertCount(), len(got))
			}
			return got
		}
		got = append(got, line)
	}
}

// TestServerBinaryReplayByteIdentical is the binary-protocol acceptance
// test: replaying the seeded trace as batched binary frames through the
// sharded live plan yields exactly the bytes of the offline unsharded
// synchronous run — same criterion TestServerReplayByteIdentical pins
// for JSON, same reference.
func TestServerBinaryReplayByteIdentical(t *testing.T) {
	msgs := wireTrace(t, 40, 300)
	ref := offlineAlertLines(t, msgs, testQ1Config(0))
	if len(ref) == 0 {
		t.Fatal("offline reference produced no alerts")
	}

	s := newTestServer(t, Config{
		NewPlan:    Q1Plan(testQ1Config(2)),
		FlushEvery: 20 * time.Millisecond,
	})
	sub := dialServer(t, s)
	sub.send(Msg{Kind: KindSub})
	if m := sub.recv(5 * time.Second); m.Kind != KindOK {
		t.Fatalf("subscribe: got %+v", m)
	}
	ingest := dialServer(t, s)
	ingest.sendFrames(EncodeBwHello())
	ingest.sendFrames(encodeBinary(t, msgs))
	ingest.send(Msg{Kind: KindEnd}) // control stays JSON on a binary connection
	if m := ingest.recv(30 * time.Second); m.Kind != KindOK {
		t.Fatalf("end: got %+v", m)
	}

	got := collectAlertsUntilDone(t, sub)
	if strings.Join(got, "") != strings.Join(ref, "") {
		t.Fatalf("binary replay diverges from offline reference:\nref (%d):\n%s\ngot (%d):\n%s",
			len(ref), strings.Join(ref, ""), len(got), strings.Join(got, ""))
	}

	// The connection section must label the ingest connection binary.
	var protos []string
	for _, c := range s.Stats().Conns {
		protos = append(protos, c.Proto)
	}
	if !contains(protos, "bin") {
		t.Errorf("statsz conns %v: no connection negotiated bin", protos)
	}
}

// TestServerMixedProtocolClients: one JSON client and one binary client
// feeding the same server interleave into a single stream whose alerts
// still match the offline reference, and /statsz labels each connection
// with its own negotiated protocol.
func TestServerMixedProtocolClients(t *testing.T) {
	msgs := wireTrace(t, 40, 300)
	ref := offlineAlertLines(t, msgs, testQ1Config(0))
	if len(ref) == 0 {
		t.Fatal("offline reference produced no alerts")
	}

	s := newTestServer(t, Config{
		NewPlan:    Q1Plan(testQ1Config(2)),
		FlushEvery: 20 * time.Millisecond,
	})
	sub := dialServer(t, s)
	sub.send(Msg{Kind: KindSub})
	if m := sub.recv(5 * time.Second); m.Kind != KindOK {
		t.Fatalf("subscribe: got %+v", m)
	}

	half := len(msgs) / 2
	jsonC := dialServer(t, s)
	for _, m := range msgs[:half] {
		jsonC.send(m)
	}
	// The pong proves every preceding line on this connection has been
	// enqueued — only then may the binary client send the second half, so
	// the interleaved stream keeps the reference order.
	jsonC.send(Msg{Kind: KindPing})
	if m := jsonC.recv(10 * time.Second); m.Kind != KindPong {
		t.Fatalf("ping: got %+v", m)
	}
	binC := dialServer(t, s)
	binC.sendFrames(encodeBinary(t, msgs[half:]))
	binC.send(Msg{Kind: KindEnd})
	if m := binC.recv(30 * time.Second); m.Kind != KindOK {
		t.Fatalf("end: got %+v", m)
	}

	got := collectAlertsUntilDone(t, sub)
	if strings.Join(got, "") != strings.Join(ref, "") {
		t.Fatalf("mixed-protocol replay diverges from offline reference:\nref (%d):\n%s\ngot (%d):\n%s",
			len(ref), strings.Join(ref, ""), len(got), strings.Join(got, ""))
	}

	var protos []string
	for _, c := range s.Stats().Conns {
		protos = append(protos, c.Proto)
	}
	if !contains(protos, "json") || !contains(protos, "bin") {
		t.Errorf("statsz conns %v: want both json and bin connections", protos)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestServerDoneAlwaysReportsAlerts pins the omitempty regression: a
// stream that produced zero alerts must still carry the alerts field on
// its done line — {"kind":"done","alerts":0} — so resuming clients can
// tell "no alerts" from "field missing".
func TestServerDoneAlwaysReportsAlerts(t *testing.T) {
	s := newTestServer(t, Config{
		NewPlan:    Q1Plan(testQ1Config(2)),
		FlushEvery: 20 * time.Millisecond,
	})
	sub := dialServer(t, s)
	sub.send(Msg{Kind: KindSub})
	// A fresh subscribe must NOT carry the field: the plain ok is the
	// "nothing to resume" contract.
	if ack := sub.recvLine(5 * time.Second); strings.Contains(ack, "alerts") {
		t.Fatalf("fresh subscribe ack carries alerts: %q", ack)
	}
	ingest := dialServer(t, s)
	ingest.send(Msg{Kind: KindEnd}) // empty stream: zero alerts
	if m := ingest.recv(10 * time.Second); m.Kind != KindOK {
		t.Fatalf("end: got %+v", m)
	}
	done := sub.recvLine(10 * time.Second)
	var m Msg
	if err := json.Unmarshal([]byte(done), &m); err != nil {
		t.Fatalf("bad done line %q: %v", done, err)
	}
	if m.Kind != KindDone {
		t.Fatalf("expected done, got %q", done)
	}
	if !strings.Contains(done, `"alerts":0`) {
		t.Fatalf("zero-alert done line omits the alerts field: %q", done)
	}
}

// FuzzBwireDecode: arbitrary bytes through the frame reader and both
// payload decoders must never panic, and any payload that decodes as a
// TUPLES frame must re-encode canonically — encode(decode(p)) is a
// fixpoint under another decode/encode round.
func FuzzBwireDecode(f *testing.F) {
	seedMsgs := wireTrace(f, 5, 30)
	bb := NewBwBatcher()
	for _, m := range seedMsgs {
		if err := bb.Add(m); err != nil {
			f.Fatal(err)
		}
	}
	raw := bb.Take()
	f.Add(raw)
	wr := NewWireReader(bytes.NewReader(raw), 0)
	for {
		_, fr, err := wr.Next()
		if err != nil {
			break
		}
		f.Add(append([]byte(nil), fr.Payload...))
	}
	f.Add([]byte{BwMagic, BwTuples, 0, 0, 0, 0})
	f.Add([]byte(`{"kind":"tuple","t_ms":1,"attrs":{"x":1}}` + "\n"))

	scFuzz := &BwSchema{ID: 1, Source: "locations", KeyNames: []string{"tag"},
		AttrNames: []string{"weight", "x", "y", "z"}}
	scFrame := scFuzz.EncodeFrame()

	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame/line splitting over arbitrary bytes.
		wr := NewWireReader(bytes.NewReader(data), 1<<16)
		for i := 0; i < 64; i++ {
			if _, _, err := wr.Next(); err != nil {
				break
			}
		}
		// Arbitrary bytes as a schema payload.
		d := NewBwDecoder()
		d.AddSchema(data)
		// Arbitrary bytes as a tuples payload against a known schema.
		d2 := NewBwDecoder()
		sc, err := d2.AddSchema(scFrame[bwHeaderLen:])
		if err != nil {
			t.Fatalf("seed schema rejected: %v", err)
		}
		bts, err := d2.DecodeTuples(data)
		if err != nil {
			return
		}
		// Canonical fixpoint: a decoded payload re-encodes to bytes that
		// survive decode→encode unchanged (the input itself may use
		// non-minimal varints, so compare one generation removed).
		e1 := EncodeTuplesFrame(sc, bts)
		bts2, err := d2.DecodeTuples(e1[bwHeaderLen:])
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		e2 := EncodeTuplesFrame(sc, bts2)
		if !bytes.Equal(e1, e2) {
			t.Fatalf("re-encode not a fixpoint:\n e1 % x\n e2 % x", e1, e2)
		}
	})
}

// FuzzParseTuple: arbitrary JSON through the line protocol's tuple
// parser must never panic — errors only.
func FuzzParseTuple(f *testing.F) {
	for _, m := range wireTrace(f, 3, 20) {
		line, err := EncodeLine(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(line)
	}
	f.Add([]byte(`{"kind":"tuple","t_ms":100,"keys":{"tag":1},"attrs":{"x":[1,2],"weight":140}}`))
	f.Add([]byte(`{"kind":"tuple","t_ms":-5,"attrs":{"x":{"not":"an attr"}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Msg
		if err := json.Unmarshal(data, &m); err != nil {
			return
		}
		u, err := ParseTuple(m)
		if err == nil && u == nil {
			t.Fatal("ParseTuple returned nil tuple with nil error")
		}
	})
}
