package server

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

// BenchmarkEngineFloor is the wire benchmarks' upper bound: the same
// trace pushed straight into the live plan as pre-built UTuples — no
// TCP, no decode, no queue hand-off from a socket reader. The gap
// between this and BenchmarkServerWire is the wire protocol's whole
// budget, which is what the binary protocol attacks.
func BenchmarkEngineFloor(b *testing.B) {
	for _, shards := range []int{0, 2} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			msgs := wireTrace(b, 40, 300)
			us := make([]*core.UTuple, len(msgs))
			for i, m := range msgs {
				u, err := ParseTuple(m)
				if err != nil {
					b.Fatal(err)
				}
				us[i] = u
			}
			// Pre-clone per iteration so the engine consumes fresh tuples.
			sets := make([][]*core.UTuple, b.N)
			for i := range sets {
				sets[i] = make([]*core.UTuple, len(us))
				for j, u := range us {
					sets[i][j] = u.Clone()
				}
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				plan := Q1Plan(testQ1Config(shards))()
				q := NewQueue(1024, Block)
				nalerts := 0
				plan.OnResult(func(t *stream.Tuple) { nalerts++ })
				done := make(chan struct{})
				go func() {
					defer close(done)
					plan.RunLiveOpts(context.Background(), q, stream.LiveOptions{FlushEvery: 50 * time.Millisecond})
				}()
				box, port, _ := plan.LookupSource("locations")
				for _, u := range sets[i] {
					q.Put(context.Background(), stream.SourceTuple{Box: box, Port: port, T: core.Wrap(u)})
				}
				q.Close()
				<-done
			}
			b.ReportMetric(float64(len(us)*b.N)/time.Since(start).Seconds(), "tuples/s")
		})
	}
}
