// bwire is the length-prefixed binary wire protocol: the high-volume
// alternative to the JSON-lines protocol in wire.go, negotiated per
// message by a magic-byte sniff so both share one port and one
// connection.
//
// Frame layout (all multi-byte integers inside the payload use the
// internal/snap primitives — uvarint/zig-zag varint/fixed little-endian):
//
//	0xBF  kind(1)  payload_len(u32 LE)  payload
//
// 0xBF can never begin a JSON-lines message (RFC 8259 JSON text starts
// with ASCII whitespace or a value byte, all < 0x80), so a reader peeks
// one byte per message and dispatches: frame or line. There is no
// handshake and no mode switch — a connection may interleave binary tuple
// frames with JSON control lines ("end", "ckpt"), and replies, alerts,
// and done lines stay JSON on every path.
//
// The hot kind is TUPLES: a batch of up to 32 tuples (matching the
// engine's channel transport batches) referencing a schema table interned
// per connection — SCHEMA frames name the source and the sorted key/attr
// columns once, and every tuple after that is just fixed fields: flags,
// t_ms varint, seq uvarint, key varints, and float64 raw-bits
// (mean, std) pairs. That kills the three per-tuple costs of the JSON
// path: map-shaped decoding, name sorting (ParseTuple), and base64/JSON
// re-marshalling on cluster links.
//
// Structural validation (frame shape, schema references, sorted names)
// happens at decode; semantic validation (negative t_ms, non-finite
// attrs) happens when a tuple is lifted into the engine, exactly like the
// JSON path — so a decoded frame re-encodes byte-identically regardless
// of whether the engine would accept its tuples.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/snap"
	"repro/internal/stream"
)

// BwMagic is the first byte of every binary frame; it is never valid as
// the leading byte of a JSON-lines message.
const BwMagic = 0xBF

// Binary frame kinds. Only the hot protocol verbs have binary encodings;
// everything else (join, ckpt, snap, promote, acks, alerts, done) stays
// JSON — those are per-epoch or per-window, not per-tuple.
const (
	// BwHello announces a binary-capable peer: a router sends it on a
	// worker link before "join" (so the worker answers "part" traffic in
	// binary), and a client may send it before its first frame so /statsz
	// labels the connection before tuples arrive.
	BwHello byte = 0x01
	// BwSchemaFrame interns a tuple shape (a BwSchema): source name plus
	// sorted key/attr columns, under a sender-assigned id. Sent once per
	// shape per connection, before the first TUPLES frame referencing it.
	BwSchemaFrame byte = 0x02
	// BwTuples is a batch of tuples sharing one schema.
	BwTuples byte = 0x03
	// BwClose is a window-close punctuation (router → worker).
	BwClose byte = 0x04
	// BwPart ships a partial-aggregate blob (worker → router):
	// slot uvarint + stream.EncodeWireTuple bytes.
	BwPart byte = 0x05
	// BwTail is a self-contained tuple record (schema inline) that never
	// crosses the wire: workers append it to replica replay tails, which
	// outlive the connection whose schema table defined the tuple.
	BwTail byte = 0x06
)

// Tuple flag bits.
const (
	bwFlagShard   = 1 << 0 // tuple carries a routed slot
	bwFlagReplica = 1 << 1 // dual-written replica copy: append to tail
)

const (
	bwHeaderLen = 6       // magic + kind + u32 length
	bwVersion   = 1       // HELLO payload
	bwMaxBatch  = 4096    // decoder-side cap on tuples per frame
	bwMaxNames  = 1 << 12 // decoder-side cap on schema columns
	// BwBatch is the sender-side tuples-per-frame target, matching the
	// engine's 32-tuple channel transport batches.
	BwBatch = 32
)

// BwFrame is one decoded frame envelope. Payload aliases the reader's
// buffer: it is valid only until the next read.
type BwFrame struct {
	Kind    byte
	Payload []byte
}

// appendFrame wraps a payload in the frame envelope.
func appendFrame(dst []byte, kind byte, payload []byte) []byte {
	dst = append(dst, BwMagic, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ---------------------------------------------------------------------------
// WireReader: per-message protocol dispatch

// WireReader reads a mixed protocol stream: each message is a JSON line
// or a binary frame, decided by its first byte. Both the returned line
// and frame payload are backed by reused buffers — valid only until the
// next call.
type WireReader struct {
	br     *bufio.Reader
	maxLen int
	line   []byte
	frame  []byte
	hdr    [bwHeaderLen]byte
}

// NewWireReader wraps r; maxLen bounds both line length and frame payload
// length (<= 0 selects 1 MiB, matching the JSON scanner's old limit).
func NewWireReader(r io.Reader, maxLen int) *WireReader {
	if maxLen <= 0 {
		maxLen = 1 << 20
	}
	return &WireReader{br: bufio.NewReaderSize(r, 64<<10), maxLen: maxLen}
}

// Next returns the next message: either line != nil (a JSON line, newline
// stripped, possibly empty) or a binary frame. io.EOF means a clean end
// of stream.
func (wr *WireReader) Next() (line []byte, fr BwFrame, err error) {
	first, err := wr.br.Peek(1)
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return nil, BwFrame{}, err
	}
	if first[0] == BwMagic {
		fr, err = wr.readFrame()
		return nil, fr, err
	}
	line, err = wr.readLine()
	return line, BwFrame{}, err
}

func (wr *WireReader) readFrame() (BwFrame, error) {
	if _, err := io.ReadFull(wr.br, wr.hdr[:]); err != nil {
		return BwFrame{}, fmt.Errorf("bwire: truncated frame header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(wr.hdr[2:]))
	if n > wr.maxLen {
		return BwFrame{}, fmt.Errorf("bwire: frame payload %d bytes exceeds limit %d", n, wr.maxLen)
	}
	if cap(wr.frame) < n {
		wr.frame = make([]byte, n)
	}
	wr.frame = wr.frame[:n]
	if _, err := io.ReadFull(wr.br, wr.frame); err != nil {
		return BwFrame{}, fmt.Errorf("bwire: truncated frame payload: %w", err)
	}
	return BwFrame{Kind: wr.hdr[1], Payload: wr.frame}, nil
}

// readLine reads one newline-terminated line into the reused buffer,
// stripping the trailing \n (and \r). A non-terminated final line before
// EOF is still returned, matching bufio.Scanner.
func (wr *WireReader) readLine() ([]byte, error) {
	wr.line = wr.line[:0]
	for {
		chunk, err := wr.br.ReadSlice('\n')
		wr.line = append(wr.line, chunk...)
		if len(wr.line) > wr.maxLen {
			return nil, fmt.Errorf("bwire: line exceeds %d bytes", wr.maxLen)
		}
		switch err {
		case nil:
			return trimEOL(wr.line), nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(wr.line) > 0 {
				return trimEOL(wr.line), nil
			}
			return nil, io.EOF
		default:
			return nil, err
		}
	}
}

func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// ---------------------------------------------------------------------------
// Schemas and decoded tuples

// BwSchema is one interned tuple shape: the connection-scoped column
// table every TUPLES frame references. Name slices are sorted, exactly
// sized, and immutable once registered — decoded tuples alias them.
type BwSchema struct {
	ID        uint64
	Source    string
	KeyNames  []string
	AttrNames []string

	frame []byte // encoder side: the cached encoded SCHEMA frame
}

// EncodeFrame renders the schema's canonical SCHEMA frame.
func (sc *BwSchema) EncodeFrame() []byte {
	var w snap.Writer
	w.Uvarint(sc.ID)
	w.String(sc.Source)
	w.Uvarint(uint64(len(sc.KeyNames)))
	for _, n := range sc.KeyNames {
		w.String(n)
	}
	w.Uvarint(uint64(len(sc.AttrNames)))
	for _, n := range sc.AttrNames {
		w.String(n)
	}
	return appendFrame(nil, BwSchemaFrame, w.Bytes())
}

// BwTuple is one decoded tuple from a TUPLES frame. Keys and Attrs are
// positional, parallel to the schema's sorted name slices; both are
// decoder scratch, valid only until the next DecodeTuples call.
type BwTuple struct {
	Schema  *BwSchema
	T       int64
	Seq     uint64
	Shard   int // routed slot, -1 when absent
	Replica bool
	Keys    []int64
	Attrs   []Attr
}

// UTuple lifts a decoded tuple into the engine, the binary counterpart of
// ParseTuple: no per-tuple map, no sort — attribute names alias the
// schema's interned slice, sorted once when the schema was registered.
func (bt *BwTuple) UTuple() (*core.UTuple, error) {
	return buildUTuple(bt.T, bt.Schema.KeyNames, bt.Keys, bt.Schema.AttrNames, bt.Attrs)
}

// Msg renders the decoded tuple as its JSON-protocol equivalent — the
// cluster router uses this to funnel binary ingest through the same
// routing path as JSON lines (the router hop is not the per-tuple
// bottleneck; worker ingest is, and that path stays map-free).
func (bt *BwTuple) Msg() Msg {
	m := Msg{Kind: KindTuple, Source: bt.Schema.Source, T: bt.T, Seq: bt.Seq, Replica: bt.Replica}
	if bt.Shard >= 0 {
		s := bt.Shard
		m.Shard = &s
	}
	if len(bt.Keys) > 0 {
		m.Keys = make(map[string]int64, len(bt.Keys))
		for i, v := range bt.Keys {
			m.Keys[bt.Schema.KeyNames[i]] = v
		}
	}
	m.Attrs = make(map[string]Attr, len(bt.Attrs))
	for i, a := range bt.Attrs {
		m.Attrs[bt.Schema.AttrNames[i]] = a
	}
	return m
}

func buildUTuple(t int64, keyNames []string, keys []int64, attrNames []string, attrs []Attr) (*core.UTuple, error) {
	if t < 0 {
		return nil, fmt.Errorf("tuple t_ms %d is negative", t)
	}
	if len(attrNames) == 0 {
		return nil, fmt.Errorf("tuple carries no attrs")
	}
	dists := make([]dist.Dist, len(attrs))
	for i, a := range attrs {
		d, err := a.Dist()
		if err != nil {
			return nil, fmt.Errorf("attr %q: %w", attrNames[i], err)
		}
		dists[i] = d
	}
	u := core.NewUTupleShared(stream.Time(t), attrNames, dists)
	if len(keys) > 0 {
		u.Keys = make(map[string]int64, len(keys))
		for i, v := range keys {
			u.Keys[keyNames[i]] = v
		}
	}
	return u, nil
}

// ---------------------------------------------------------------------------
// Decoder

// BwDecoder holds one connection's receive-side protocol state: the
// interned schema table plus reused scratch, so steady-state tuple
// decoding allocates nothing.
type BwDecoder struct {
	schemas map[uint64]*BwSchema
	rd      snap.Reader
	tuples  []BwTuple
	keys    []int64
	attrs   []Attr
}

// NewBwDecoder returns an empty decoder (one per connection).
func NewBwDecoder() *BwDecoder {
	return &BwDecoder{schemas: make(map[uint64]*BwSchema)}
}

// AddSchema registers a SCHEMA frame payload. Ids are write-once:
// redefining one is a protocol error (senders assign fresh ids).
func (d *BwDecoder) AddSchema(payload []byte) (*BwSchema, error) {
	r := snap.NewReader(payload)
	sc := &BwSchema{ID: r.Uvarint(), Source: r.String()}
	readNames := func(what string, allowEmpty bool) []string {
		n := r.Uvarint()
		if r.Err() != nil {
			return nil
		}
		if n > bwMaxNames {
			r.Fail("%d %s columns exceed limit %d", n, what, bwMaxNames)
			return nil
		}
		names := make([]string, n)
		for i := range names {
			names[i] = r.String()
			if r.Err() != nil {
				return nil
			}
			if names[i] == "" && !allowEmpty {
				r.Fail("empty %s name", what)
				return nil
			}
			if i > 0 && names[i] <= names[i-1] {
				r.Fail("%s names not sorted/unique (%q after %q)", what, names[i], names[i-1])
				return nil
			}
		}
		return names
	}
	sc.KeyNames = readNames("key", true)
	sc.AttrNames = readNames("attr", false)
	if err := r.Close(); err != nil {
		return nil, err
	}
	if len(sc.AttrNames) == 0 {
		return nil, fmt.Errorf("bwire: schema %d carries no attrs", sc.ID)
	}
	if _, dup := d.schemas[sc.ID]; dup {
		return nil, fmt.Errorf("bwire: schema id %d redefined", sc.ID)
	}
	d.schemas[sc.ID] = sc
	return sc, nil
}

// DecodeTuples decodes a TUPLES frame payload. The returned slice and the
// Keys/Attrs it points into are decoder scratch, overwritten by the next
// call — lift what you keep (UTuple, EncodeTailTuple) before then.
func (d *BwDecoder) DecodeTuples(payload []byte) ([]BwTuple, error) {
	r := &d.rd
	r.Reset(payload)
	sc, ok := d.schemas[r.Uvarint()]
	if !ok {
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("bwire: tuples frame references unknown schema")
	}
	count := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	nk, na := len(sc.KeyNames), len(sc.AttrNames)
	// Bound the scratch growth by what the payload could actually hold
	// before trusting count: flags + t + seq = 3 bytes minimum per tuple.
	minPer := uint64(3 + nk + 16*na)
	if count == 0 || count > bwMaxBatch || count*minPer > uint64(len(payload)) {
		return nil, fmt.Errorf("bwire: tuples frame count %d invalid for %d payload bytes", count, len(payload))
	}
	n := int(count)
	if cap(d.tuples) < n {
		d.tuples = make([]BwTuple, n)
	}
	if cap(d.keys) < n*nk {
		d.keys = make([]int64, n*nk)
	}
	if cap(d.attrs) < n*na {
		d.attrs = make([]Attr, n*na)
	}
	tuples, keys, attrs := d.tuples[:n], d.keys[:n*nk], d.attrs[:n*na]
	for i := 0; i < n; i++ {
		bt := &tuples[i]
		flags := r.U8()
		if flags&^(bwFlagShard|bwFlagReplica) != 0 {
			r.Fail("unknown tuple flags %#x", flags)
			break
		}
		bt.Schema = sc
		bt.T = r.Varint()
		bt.Seq = r.Uvarint()
		bt.Shard = -1
		if flags&bwFlagShard != 0 {
			bt.Shard = int(r.Uvarint())
		}
		bt.Replica = flags&bwFlagReplica != 0
		bt.Keys = keys[i*nk : (i+1)*nk : (i+1)*nk]
		for j := range bt.Keys {
			bt.Keys[j] = r.Varint()
		}
		bt.Attrs = attrs[i*na : (i+1)*na : (i+1)*na]
		for j := range bt.Attrs {
			bt.Attrs[j] = Attr{Mean: r.F64(), Std: r.F64()}
		}
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return tuples, nil
}

// ---------------------------------------------------------------------------
// Encoder

// BwEncoder holds one connection's send-side protocol state: the schema
// intern table keyed by tuple shape. Not safe for concurrent use.
type BwEncoder struct {
	sigs  map[string]*BwSchema
	next  uint64
	sig   []byte   // scratch: shape signature
	names []string // scratch: name sorting
}

// NewBwEncoder returns an empty encoder (one per connection/session — the
// schema table is connection state and must be re-sent after a redial).
func NewBwEncoder() *BwEncoder {
	return &BwEncoder{sigs: make(map[string]*BwSchema)}
}

// Intern returns the schema for m's shape, registering it on first use.
// isNew means the schema's frame (Frame) must reach the peer before any
// TUPLES frame referencing it. Steady state (shape already interned) does
// not allocate.
func (e *BwEncoder) Intern(m *Msg) (sc *BwSchema, isNew bool, err error) {
	if len(m.Attrs) == 0 {
		return nil, false, fmt.Errorf("tuple carries no attrs")
	}
	sig := e.sig[:0]
	sig = appendLenPrefixed(sig, m.Source)
	e.names = e.names[:0]
	for k := range m.Keys {
		e.names = append(e.names, k)
	}
	sort.Strings(e.names)
	sig = append(sig, 0)
	for _, k := range e.names {
		sig = appendLenPrefixed(sig, k)
	}
	nk := len(e.names)
	for a := range m.Attrs {
		if a == "" {
			return nil, false, fmt.Errorf("tuple has an empty attr name")
		}
		e.names = append(e.names, a)
	}
	attrNames := e.names[nk:]
	sort.Strings(attrNames)
	sig = append(sig, 1)
	for _, a := range attrNames {
		sig = appendLenPrefixed(sig, a)
	}
	e.sig = sig[:0]
	if sc := e.sigs[string(sig)]; sc != nil {
		return sc, false, nil
	}
	e.next++
	sc = &BwSchema{
		ID:        e.next,
		Source:    m.Source,
		KeyNames:  exactCopy(e.names[:nk]),
		AttrNames: exactCopy(attrNames),
	}
	sc.frame = sc.EncodeFrame()
	e.sigs[string(sig)] = sc
	return sc, true, nil
}

// Frame returns the schema's encoded SCHEMA frame (cached).
func (sc *BwSchema) Frame() []byte {
	if sc.frame == nil {
		sc.frame = sc.EncodeFrame()
	}
	return sc.frame
}

func appendLenPrefixed(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func exactCopy(names []string) []string {
	out := make([]string, len(names))
	copy(out, names)
	return out
}

// appendTupleBody appends one tuple's batch-frame body for schema sc,
// reading values from the Msg by the schema's sorted column order. The
// caller guarantees m has exactly sc's shape (it came from Intern(m)).
func appendTupleBody(w *snap.Writer, sc *BwSchema, m *Msg, shard int, replica bool) {
	var flags uint8
	if shard >= 0 {
		flags |= bwFlagShard
	}
	if replica {
		flags |= bwFlagReplica
	}
	w.U8(flags)
	w.Varint(m.T)
	w.Uvarint(m.Seq)
	if shard >= 0 {
		w.Uvarint(uint64(shard))
	}
	for _, k := range sc.KeyNames {
		w.Varint(m.Keys[k])
	}
	for _, a := range sc.AttrNames {
		at := m.Attrs[a]
		w.F64(at.Mean)
		w.F64(at.Std)
	}
}

// EncodeTupleFrame renders a single tuple as a one-tuple TUPLES frame —
// the router's per-link encoding for routed tuples and replica copies
// (links carry at most one tuple per frame so close punctuations never
// overtake their window's tuples).
func EncodeTupleFrame(sc *BwSchema, m *Msg, shard int, replica bool) []byte {
	var w snap.Writer
	w.Uvarint(sc.ID)
	w.Uvarint(1)
	appendTupleBody(&w, sc, m, shard, replica)
	return appendFrame(nil, BwTuples, w.Bytes())
}

// EncodeTuplesFrame renders decoded tuples back into a canonical TUPLES
// frame; all tuples must share one schema. This is the decode→encode
// direction (tests, fuzzing) — senders encode from Msgs.
func EncodeTuplesFrame(sc *BwSchema, bts []BwTuple) []byte {
	var w snap.Writer
	w.Uvarint(sc.ID)
	w.Uvarint(uint64(len(bts)))
	for i := range bts {
		bt := &bts[i]
		var flags uint8
		if bt.Shard >= 0 {
			flags |= bwFlagShard
		}
		if bt.Replica {
			flags |= bwFlagReplica
		}
		w.U8(flags)
		w.Varint(bt.T)
		w.Uvarint(bt.Seq)
		if bt.Shard >= 0 {
			w.Uvarint(uint64(bt.Shard))
		}
		for _, k := range bt.Keys {
			w.Varint(k)
		}
		for _, a := range bt.Attrs {
			w.F64(a.Mean)
			w.F64(a.Std)
		}
	}
	return appendFrame(nil, BwTuples, w.Bytes())
}

// BwBatcher accumulates tuples into batched TUPLES frames (schema frames
// interleaved as new shapes appear): the client-side ingest encoder.
type BwBatcher struct {
	enc *BwEncoder
	out []byte
	cur *BwSchema
	n   int
	w   snap.Writer
}

// NewBwBatcher returns a batcher with a fresh schema table.
func NewBwBatcher() *BwBatcher { return &BwBatcher{enc: NewBwEncoder()} }

// Add appends one tuple, flushing the open frame when the schema changes
// or it reaches BwBatch tuples.
func (b *BwBatcher) Add(m Msg) error {
	sc, isNew, err := b.enc.Intern(&m)
	if err != nil {
		return err
	}
	if b.cur != nil && (sc != b.cur || b.n >= BwBatch) {
		b.Flush()
	}
	if isNew {
		b.out = append(b.out, sc.Frame()...)
	}
	if b.cur == nil {
		b.cur = sc
		b.w.Reset()
		b.w.Uvarint(sc.ID)
	}
	shard := -1
	if m.Shard != nil {
		shard = *m.Shard
	}
	appendTupleBody(&b.w, sc, &m, shard, m.Replica)
	b.n++
	return nil
}

// Flush closes the open TUPLES frame, if any, into the output buffer.
func (b *BwBatcher) Flush() {
	if b.cur == nil {
		return
	}
	// The tuple count sits between the schema id and the bodies, so the
	// frame is assembled here, where the count is known.
	b.out = assembleTuplesFrame(b.out, b.cur.ID, b.n, b.w.Bytes())
	b.cur, b.n = nil, 0
}

// assembleTuplesFrame wraps pre-encoded tuple bodies (prefixed in buf by
// the schema id written at batch start) into a complete frame.
func assembleTuplesFrame(dst []byte, schemaID uint64, count int, buf []byte) []byte {
	idLen := varintLen(schemaID)
	bodies := buf[idLen:]
	var pre [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pre[:], schemaID)
	n += binary.PutUvarint(pre[n:], uint64(count))
	dst = append(dst, BwMagic, BwTuples)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n+len(bodies)))
	dst = append(dst, pre[:n]...)
	return append(dst, bodies...)
}

func varintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Take flushes and hands the accumulated frame bytes to the caller,
// resetting the batcher's output (the schema table persists).
func (b *BwBatcher) Take() []byte {
	b.Flush()
	out := b.out
	b.out = nil
	return out
}

// ---------------------------------------------------------------------------
// Control frames

// EncodeBwHello renders the protocol announcement frame.
func EncodeBwHello() []byte {
	return appendFrame(nil, BwHello, []byte{bwVersion})
}

// DecodeBwHello validates a HELLO payload.
func DecodeBwHello(payload []byte) error {
	if len(payload) != 1 || payload[0] != bwVersion {
		return fmt.Errorf("bwire: bad hello payload % x", payload)
	}
	return nil
}

// BwCloseMsg is a decoded window-close punctuation.
type BwCloseMsg struct {
	Source string
	T      int64
	Seq    uint64
}

// EncodeBwClose renders a close punctuation frame. Closes are per window,
// not per tuple, so the source name travels inline — no schema table
// involvement, and the frame is valid on any connection.
func EncodeBwClose(source string, t int64, seq uint64) []byte {
	var w snap.Writer
	w.String(source)
	w.Varint(t)
	w.Uvarint(seq)
	return appendFrame(nil, BwClose, w.Bytes())
}

// DecodeBwClose reverses EncodeBwClose.
func DecodeBwClose(payload []byte) (BwCloseMsg, error) {
	r := snap.NewReader(payload)
	c := BwCloseMsg{Source: r.String(), T: r.Varint(), Seq: r.Uvarint()}
	return c, r.Close()
}

// EncodeBwPart renders a partial-aggregate frame: the binary replacement
// for the JSON "part" line, whose Data blob paid base64 on every partial.
func EncodeBwPart(slot int, data []byte) []byte {
	var w snap.Writer
	w.Uvarint(uint64(slot))
	w.Blob(data)
	return appendFrame(nil, BwPart, w.Bytes())
}

// DecodeBwPart reverses EncodeBwPart. data aliases payload — decode it
// (stream.DecodeWireTuple copies) before the buffer is reused.
func DecodeBwPart(payload []byte) (slot int, data []byte, err error) {
	r := snap.NewReader(payload)
	slot = int(r.Uvarint())
	data = r.BlobRef()
	return slot, data, r.Close()
}

// ---------------------------------------------------------------------------
// Tail records

// BwTailMsg is a decoded self-contained tail record.
type BwTailMsg struct {
	Source    string
	T         int64
	Seq       uint64
	KeyNames  []string
	Keys      []int64
	AttrNames []string
	Attrs     []Attr
}

// UTuple lifts the tail record into the engine for replay.
func (tm *BwTailMsg) UTuple() (*core.UTuple, error) {
	return buildUTuple(tm.T, tm.KeyNames, tm.Keys, tm.AttrNames, tm.Attrs)
}

// EncodeTailTuple renders a decoded replica tuple as a self-contained
// BwTail record: replica replay tails outlive the connection (and so the
// schema table) that delivered the tuple, and a promote must replay them
// standalone.
func EncodeTailTuple(bt *BwTuple) []byte {
	var w snap.Writer
	w.String(bt.Schema.Source)
	w.Varint(bt.T)
	w.Uvarint(bt.Seq)
	w.Uvarint(uint64(len(bt.Keys)))
	for i, k := range bt.Schema.KeyNames {
		w.String(k)
		w.Varint(bt.Keys[i])
	}
	w.Uvarint(uint64(len(bt.Attrs)))
	for i, a := range bt.Schema.AttrNames {
		w.String(a)
		w.F64(bt.Attrs[i].Mean)
		w.F64(bt.Attrs[i].Std)
	}
	return appendFrame(nil, BwTail, w.Bytes())
}

// DecodeTailTuple reverses EncodeTailTuple. Replay is cold (one promote
// per failover), so it allocates freely.
func DecodeTailTuple(payload []byte) (BwTailMsg, error) {
	r := snap.NewReader(payload)
	tm := BwTailMsg{Source: r.String(), T: r.Varint(), Seq: r.Uvarint()}
	nk := r.Uvarint()
	if r.Err() == nil && nk > bwMaxNames {
		r.Fail("%d key columns exceed limit %d", nk, bwMaxNames)
	}
	if r.Err() == nil && nk > 0 {
		tm.KeyNames = make([]string, nk)
		tm.Keys = make([]int64, nk)
		for i := range tm.KeyNames {
			tm.KeyNames[i] = r.String()
			tm.Keys[i] = r.Varint()
		}
	}
	na := r.Uvarint()
	if r.Err() == nil && na > bwMaxNames {
		r.Fail("%d attr columns exceed limit %d", na, bwMaxNames)
	}
	if r.Err() == nil && na > 0 {
		tm.AttrNames = make([]string, na)
		tm.Attrs = make([]Attr, na)
		for i := range tm.AttrNames {
			tm.AttrNames[i] = r.String()
			tm.Attrs[i] = Attr{Mean: r.F64(), Std: r.F64()}
		}
	}
	return tm, r.Close()
}

// SplitFrame splits a standalone encoded frame (as stored in replay
// tails) into kind and payload.
func SplitFrame(rec []byte) (kind byte, payload []byte, err error) {
	if len(rec) < bwHeaderLen || rec[0] != BwMagic {
		return 0, nil, fmt.Errorf("bwire: not a frame")
	}
	n := int(binary.LittleEndian.Uint32(rec[2:]))
	if len(rec) != bwHeaderLen+n {
		return 0, nil, fmt.Errorf("bwire: frame length %d does not match record %d", n, len(rec))
	}
	return rec[1], rec[bwHeaderLen:], nil
}
