package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/uop"
)

// This file is the worker side of cluster execution. A router (see
// internal/router) owns the window clock and key routing; this worker runs
// one partial-aggregate plan over its key subset and ships every result —
// per-group partials, then the forwarded close, per window — back to the
// router as "part" lines carrying stream.EncodeWireTuple blobs.
//
// Beyond its own slot, a worker plays two supporting roles:
//
//   - Replica host: tuples dual-written with {"replica":true} are appended,
//     as raw lines, to a per-slot replay tail. "close" punctuations are
//     appended to every tail, so a tail is always a complete suffix of the
//     slot's input stream — replaying it through a fresh plan reproduces
//     the dead worker's state (and, crucially, its close count, which the
//     output-suppression accounting below depends on).
//   - Failover host: on "promote" the worker spawns an in-process instance
//     for the dead slot — restored from the last installed snapshot when
//     one matches, fresh otherwise — replays the tail, and from then on
//     runs the slot alongside its own. The instance suppresses output for
//     window ordinals the router has already merged (Closes on the promote
//     line), so the merged alert stream sees each window's parts exactly
//     once.
type clusterState struct {
	s *Server

	// shard is this worker's assigned slot (-1 until the router joins it).
	shard atomic.Int64

	mu       sync.Mutex
	joined   bool
	workers  int
	replicas int
	version  uint64
	// epochEnded flips when "end" arrives (or the epoch's run returns) and
	// back when the next epoch begins; a promote that lands after it must
	// drain its instance inline before acking.
	epochEnded bool
	ownPE      *partEmitter
	// tails holds, per non-own slot, the raw replica/close lines received
	// since the slot's last installed snapshot (or epoch start).
	tails map[int][][]byte
	// marks records, per cluster-checkpoint id, each tail's length when the
	// checkpoint was taken — the replay suffix boundary once the snapshot
	// installs.
	marks map[uint64]map[int]int
	// snaps holds the last snapshot installed per slot ("snap" lines).
	snaps map[int]snapRec
	// insts are the promoted failover instances, by slot.
	insts map[int]*instance
	// hosted marks slots this worker has permanently taken over: once a
	// slot is promoted here, every later epoch spawns a fresh instance for
	// it up front, so the new epoch's closes reach it from the first
	// punctuation (the router keeps routing the slot here).
	hosted map[int]bool
	// pendingReset is a router-recovery rewind waiting for the next epoch;
	// the resets counter increments when one is applied.
	pendingReset *ResetBlob
	// ownReleased silences the worker's own slot: its state migrated to
	// another worker, so this plan keeps consuming closes (the clock still
	// broadcasts to every link) but ships no parts.
	ownReleased bool

	parts        atomic.Uint64
	closes       atomic.Uint64
	replicaLines atomic.Uint64
	promotions   atomic.Uint64
	resets       atomic.Uint64
	releases     atomic.Uint64
}

// snapRec is one installed replica snapshot.
type snapRec struct {
	id     uint64 // cluster checkpoint id
	closes uint64 // window closes consumed before the snapshot
	data   []byte
}

// instance is a promoted slot running in-process alongside the worker's own
// epoch: its own plan, ingest queue, and live run.
type instance struct {
	slot     int
	plan     *uop.Compiled
	queue    *Queue
	barriers chan func()
	runDone  chan struct{}
	pe       *partEmitter
}

// partEmitter tracks one plan's outbound part stream: how many window
// closes it has emitted (the window ordinal), and the suppression floor a
// promotion sets so already-merged windows are not re-shipped. suppress is
// atomic because a "release" (the slot migrated away) raises it to the
// ceiling while the plan is still running.
type partEmitter struct {
	// slot is the emitting slot, or -1 to read clusterState.shard at emit
	// time (the worker's own epoch starts before the router joins it).
	slot     int
	ordinal  atomic.Uint64
	suppress atomic.Uint64
}

// releaseFloor silences an emitter permanently (slot released/migrated).
const releaseFloor = ^uint64(0)

func newClusterState(s *Server) *clusterState {
	cl := &clusterState{
		s:      s,
		tails:  map[int][][]byte{},
		marks:  map[uint64]map[int]int{},
		snaps:  map[int]snapRec{},
		insts:  map[int]*instance{},
		hosted: map[int]bool{},
	}
	cl.shard.Store(-1)
	return cl
}

// ringVersion reports the membership version from the last join (for pong).
func (cl *clusterState) ringVersion() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.version
}

// beginEpoch resets per-epoch cluster state for a fresh engine epoch and
// returns the epoch's own part emitter. Hosted slots (taken over by a past
// failover) get a fresh instance up front, so the epoch's very first close
// punctuation reaches them.
func (cl *clusterState) beginEpoch(ep *epoch) *partEmitter {
	cl.mu.Lock()
	pr := cl.pendingReset
	cl.pendingReset = nil
	if pr != nil {
		// A router-recovery rewind defines the complete post-reset role set:
		// which slots this worker hosts, which it merely replicates, and
		// whether its own slot still lives here.
		cl.hosted = map[int]bool{}
		for _, sb := range pr.Insts {
			cl.hosted[sb.Slot] = true
		}
		cl.ownReleased = pr.Own == nil
	}
	cl.insts = map[int]*instance{}
	cl.marks = map[uint64]map[int]int{}
	cl.snaps = map[int]snapRec{}
	if pr != nil {
		for _, sb := range pr.Reps {
			cl.snaps[sb.Slot] = snapRec{id: pr.Ckpt, closes: sb.Closes, data: sb.Data}
		}
	}
	cl.resetTailsLocked()
	pe := &partEmitter{slot: -1}
	if cl.ownReleased {
		pe.suppress.Store(releaseFloor)
	}
	cl.ownPE = pe
	hosted := make([]int, 0, len(cl.hosted))
	for slot := range cl.hosted {
		hosted = append(hosted, slot)
	}
	cl.mu.Unlock()
	if pr != nil && pr.Own != nil && len(pr.Own.Data) > 0 {
		// Restore the own slot's plan to the router's recovered cut. The
		// plan is not running yet (RunLiveOpts starts after beginEpoch), so
		// the restore races nothing.
		if err := ep.plan.RestoreFrom(pr.Own.Data); err == nil {
			pe.ordinal.Store(pr.Own.Closes)
		} else {
			cl.s.noteCkptErr(fmt.Errorf("reset: restore own slot: %w", err))
		}
	}
	sort.Ints(hosted)
	for _, slot := range hosted {
		rec, hasSnap := snapRec{}, false
		var floor uint64
		if pr != nil {
			for _, sb := range pr.Insts {
				if sb.Slot == slot {
					rec = snapRec{id: pr.Ckpt, closes: sb.Closes, data: sb.Data}
					hasSnap = len(sb.Data) > 0
					floor = sb.Closes
				}
			}
		}
		if inst, err := cl.spawnInstance(slot, rec, hasSnap, floor); err == nil && pr != nil {
			// Migrated/recovered instances emit from the router's current
			// merge ordinal even when restored fresh.
			inst.pe.ordinal.Store(floor)
		}
	}
	// Flip last: a promote or close waiting out the epoch gap may proceed
	// only once the hosted instances exist.
	cl.mu.Lock()
	if pr != nil {
		cl.resets.Add(1)
	}
	cl.epochEnded = false
	cl.mu.Unlock()
	return pe
}

// resetTailsLocked re-creates an empty tail for every slot this worker
// neither owns nor hosts, so closes accumulate per slot from the epoch's
// first punctuation onward.
func (cl *clusterState) resetTailsLocked() {
	cl.tails = map[int][][]byte{}
	if !cl.joined {
		return
	}
	own := int(cl.shard.Load())
	for i := 0; i < cl.workers; i++ {
		if i != own && !cl.hosted[i] {
			cl.tails[i] = nil
		}
	}
}

// endEpoch marks end-of-stream for the cluster layer and closes every
// promoted instance's queue so they drain alongside the worker's own epoch.
func (cl *clusterState) endEpoch() {
	cl.mu.Lock()
	cl.epochEnded = true
	insts := cl.instancesLocked()
	cl.mu.Unlock()
	for _, inst := range insts {
		inst.queue.Close()
	}
}

// finishEpoch (engine loop, after the epoch's own run returns) waits for
// every promoted instance to drain, so the worker's "done" line provably
// follows the last part of every hosted slot.
func (cl *clusterState) finishEpoch() {
	cl.mu.Lock()
	cl.epochEnded = true
	insts := cl.instancesLocked()
	cl.mu.Unlock()
	for _, inst := range insts {
		inst.queue.Close()
		<-inst.runDone
	}
}

func (cl *clusterState) instancesLocked() []*instance {
	insts := make([]*instance, 0, len(cl.insts))
	for _, inst := range cl.insts {
		insts = append(insts, inst)
	}
	return insts
}

// emitPart runs on a plan's sink goroutine: serialize the partial (or
// forwarded close) and broadcast it to the router's subscription as a
// "part" line. ep is the worker's own epoch, nil for promoted instances.
func (cl *clusterState) emitPart(ep *epoch, pe *partEmitter, t *stream.Tuple) {
	// A crashed worker must go silent. Crash cancels the run context but the
	// engine still drains gracefully, and ingest Puts racing the cancel can
	// lose tuples mid-stream (both select arms ready), so whatever the drain
	// computes for a still-open window is built from a gap-riddled subset of
	// the slot's feed. If that half-window partial (and its forwarded close)
	// reached the router, the merge would adopt it as the window's real
	// contribution and suppress the replica's correct replay of the same
	// ordinal. A real kill -9 can never emit past the kill; neither may we.
	if cl.s.crashed.Load() {
		return
	}
	_, isClose := stream.WindowCloseOf(t)
	ord := pe.ordinal.Load()
	if isClose {
		pe.ordinal.Add(1)
	}
	if ord < pe.suppress.Load() {
		return // the router already merged this window (or the slot migrated away)
	}
	slot := pe.slot
	if slot < 0 {
		slot = int(cl.shard.Load())
		if slot < 0 {
			return // never joined; nobody is listening
		}
	}
	data, err := stream.EncodeWireTuple(t)
	if err != nil {
		cl.s.encodeErrs.Add(1)
		return
	}
	cl.parts.Add(1)
	if ep != nil {
		ep.alerts.Add(1)
	}
	// Bounded-wait, never drop: losing a part would wedge the router's
	// merge, which counts closes per port. Each subscriber population's
	// encoding is built lazily: a binary router link skips the JSON
	// marshal and the base64 expansion of the blob entirely.
	cl.s.hub.BroadcastControlEnc(
		func() []byte {
			line, err := EncodeLine(Msg{Kind: KindPart, Shard: &slot, Data: data})
			if err != nil {
				cl.s.encodeErrs.Add(1)
				return nil
			}
			return line
		},
		func() []byte { return EncodeBwPart(slot, data) },
	)
}

// handleBwTuples dispatches one binary TUPLES frame's decoded tuples: the
// frame-shaped counterpart of handleTuple. Replica copies are re-encoded
// as self-contained tail records (the connection's schema table dies with
// the connection; the tail must not), hosted-slot tuples feed their
// instance, and own-slot traffic takes the map-free ingest path.
func (cl *clusterState) handleBwTuples(bts []BwTuple) (int, error) {
	own := int(cl.shard.Load())
	for i := range bts {
		bt := &bts[i]
		if bt.Replica {
			if bt.Shard < 0 {
				return i, errors.New("replica tuple carries no shard")
			}
			cl.appendTailOwned(bt.Shard, EncodeTailTuple(bt))
			cl.replicaLines.Add(1)
			continue
		}
		if bt.Shard >= 0 && bt.Shard != own {
			u, err := bt.UTuple()
			if err != nil {
				return i, err
			}
			t := core.Wrap(u)
			t.Seq = bt.Seq
			if err := cl.feedInstance(bt.Shard, sourceName(bt.Schema.Source), t); err != nil {
				return i, err
			}
			continue
		}
		u, err := bt.UTuple()
		if err != nil {
			return i, err
		}
		t := core.Wrap(u)
		t.Seq = bt.Seq
		if err := cl.s.enqueue(sourceName(bt.Schema.Source), t); err != nil {
			return i, err
		}
	}
	return len(bts), nil
}

// handleBwClose is handleClose for a binary close frame: the record
// appended to replica tails is the frame's canonical re-encoding —
// already self-contained, so replay needs no connection state.
func (cl *clusterState) handleBwClose(cm BwCloseMsg) error {
	if cm.T < 0 {
		return fmt.Errorf("close t_ms %d is negative", cm.T)
	}
	return cl.applyClose(EncodeBwClose(cm.Source, cm.T, cm.Seq), sourceName(cm.Source), cm.T, cm.Seq)
}

// handleTuple dispatches one routed "tuple" line: replica copies append to
// the slot's tail, tuples for a hosted (promoted) slot feed that instance,
// and everything else is this worker's own traffic.
func (cl *clusterState) handleTuple(raw []byte, m Msg) error {
	if m.Replica {
		if m.Shard == nil {
			return errors.New("replica tuple carries no shard")
		}
		cl.appendTail(*m.Shard, raw)
		cl.replicaLines.Add(1)
		return nil
	}
	if m.Shard != nil && *m.Shard != int(cl.shard.Load()) {
		u, err := ParseTuple(m)
		if err != nil {
			return err
		}
		t := core.Wrap(u)
		t.Seq = m.Seq
		return cl.feedInstance(*m.Shard, sourceOf(m), t)
	}
	return cl.s.ingest(m)
}

// appendTail records a raw line in slot's replay tail. The reader reuses
// its buffer, so the line is copied.
func (cl *clusterState) appendTail(slot int, raw []byte) {
	cl.appendTailOwned(slot, append([]byte(nil), raw...))
}

// appendTailOwned records a tail record the caller already owns (no
// buffer aliasing) without copying.
func (cl *clusterState) appendTailOwned(slot int, rec []byte) {
	cl.mu.Lock()
	cl.tails[slot] = append(cl.tails[slot], rec)
	cl.mu.Unlock()
}

// feedInstance delivers a routed tuple to a promoted slot's instance. Like
// Server.enqueue, it waits out the between-epochs gap: the next beginEpoch
// re-spawns hosted instances, and tuples that race it must not be lost.
func (cl *clusterState) feedInstance(slot int, source string, t *stream.Tuple) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		cl.mu.Lock()
		inst, hosted := cl.insts[slot], cl.hosted[slot]
		cl.mu.Unlock()
		if inst != nil {
			err := cl.pushInstance(inst, source, t)
			if !errors.Is(err, ErrQueueClosed) {
				return err
			}
		} else if !hosted {
			return fmt.Errorf("tuple for slot %d, which this worker neither owns nor hosts", slot)
		}
		select {
		case <-cl.s.done:
			return errors.New("engine stopped; no further streams accepted")
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("slot %d instance not running; retry", slot)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (cl *clusterState) pushInstance(inst *instance, source string, t *stream.Tuple) error {
	box, port, ok := inst.plan.LookupSource(source)
	if !ok {
		return fmt.Errorf("unknown source %q", source)
	}
	return inst.queue.Put(cl.s.ctx, stream.SourceTuple{Box: box, Port: port, T: t})
}

// handleControl dispatches the cluster control kinds; replies (possibly
// several, for multi-slot checkpoint acks) go back on the same connection.
func (cl *clusterState) handleControl(raw []byte, m Msg) ([]Msg, error) {
	switch m.Kind {
	case KindJoin:
		return cl.handleJoin(m)
	case KindClose:
		return nil, cl.handleClose(raw, m)
	case KindCkpt:
		return cl.handleCkpt(m)
	case KindSnap:
		return cl.handleSnap(m)
	case KindPromote:
		return cl.handlePromote(m)
	case KindReset:
		return cl.handleReset(m)
	case KindRelease:
		return cl.handleRelease(m)
	}
	return nil, fmt.Errorf("unknown cluster kind %q", m.Kind)
}

// handleReset rewinds this worker to a router checkpoint cut: park the
// composite blob, cut the current epoch (its drained output goes nowhere —
// the recovering router has not subscribed yet), and wait for the next
// beginEpoch to apply it. The ack returns only once the rewound epoch is
// live, so the router's subsequent subscribe sees post-reset state only.
func (cl *clusterState) handleReset(m Msg) ([]Msg, error) {
	rb, err := DecodeResetBlob(m.Data)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	cl.pendingReset = rb
	cl.mu.Unlock()
	before := cl.resets.Load()
	deadline := time.Now().Add(15 * time.Second)
	for cl.resets.Load() == before {
		// Cut whatever epoch is currently running; idempotent, and re-issued
		// each iteration in case the cut raced an epoch turnover.
		if ep := cl.s.epoch(); ep != nil && cl.resets.Load() == before {
			cl.endEpoch()
			ep.queue.Close()
		}
		select {
		case <-cl.s.done:
			return nil, errors.New("engine stopped; reset not applied")
		default:
		}
		if time.Now().After(deadline) {
			return nil, errors.New("reset timed out waiting for epoch turnover")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return []Msg{{Kind: KindOK, Ckpt: rb.Ckpt}}, nil
}

// handleRelease stops this worker from emitting for a slot that migrated
// away: the own slot is suppressed permanently (the plan keeps consuming
// the clock's closes, silently), a hosted instance is torn down. The slot
// returns to plain tailing from the next epoch on.
func (cl *clusterState) handleRelease(m Msg) ([]Msg, error) {
	if m.Shard == nil {
		return nil, errors.New("release carries no shard")
	}
	slot := *m.Shard
	cl.mu.Lock()
	var inst *instance
	if slot == int(cl.shard.Load()) {
		cl.ownReleased = true
		if cl.ownPE != nil {
			cl.ownPE.suppress.Store(releaseFloor)
		}
	} else if inst = cl.insts[slot]; inst != nil {
		inst.pe.suppress.Store(releaseFloor)
		delete(cl.insts, slot)
		delete(cl.hosted, slot)
	} else {
		delete(cl.hosted, slot)
	}
	if slot != int(cl.shard.Load()) {
		// Resume tailing the slot right away (not just from the next
		// epoch): the router may re-assign this worker as the slot's
		// replica at a later cut, and the tail must have every close since
		// its snapshot install.
		if _, ok := cl.tails[slot]; !ok {
			cl.tails[slot] = nil
		}
	}
	cl.mu.Unlock()
	if inst != nil {
		inst.queue.Close()
	}
	cl.releases.Add(1)
	return []Msg{{Kind: KindOK, Shard: m.Shard}}, nil
}

// handleJoin assigns this worker's slot and cluster geometry. Idempotent
// per router run: a reconnecting router re-joins with the same geometry.
// Shard -1 admits the worker with no slot of its own (a mid-stream joiner:
// it tails every slot until the router migrates some onto it).
func (cl *clusterState) handleJoin(m Msg) ([]Msg, error) {
	if m.Shard == nil || *m.Shard < -1 {
		return nil, errors.New("join carries no shard")
	}
	if m.Workers < 1 || *m.Shard >= m.Workers {
		return nil, fmt.Errorf("join slot %d out of range for %d workers", *m.Shard, m.Workers)
	}
	cl.mu.Lock()
	cl.joined = true
	cl.workers = m.Workers
	cl.replicas = m.Replicas
	cl.version = m.Version
	cl.shard.Store(int64(*m.Shard))
	cl.resetTailsLocked()
	cl.mu.Unlock()
	return []Msg{{Kind: KindOK, Version: m.Version}}, nil
}

// handleClose replays one router-clock window-close punctuation into the
// worker's own epoch, every promoted instance, and every replica tail. A
// close that lands in the between-epochs gap waits for the next epoch (and
// its re-spawned hosted instances) first, so no hosted slot ever misses a
// punctuation — the merge counts one close per port per window.
func (cl *clusterState) handleClose(raw []byte, m Msg) error {
	if m.T < 0 {
		return fmt.Errorf("close t_ms %d is negative", m.T)
	}
	return cl.applyClose(append([]byte(nil), raw...), sourceOf(m), m.T, m.Seq)
}

// applyClose is the encoding-independent body of handleClose: rec is an
// owned tail record (a JSON line or a binary close frame — replayLine
// dispatches on the first byte either way).
func (cl *clusterState) applyClose(rec []byte, source string, tms int64, seq uint64) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		cl.mu.Lock()
		if !cl.epochEnded {
			break // still holding cl.mu
		}
		cl.mu.Unlock()
		select {
		case <-cl.s.done:
			return errors.New("engine stopped; no further streams accepted")
		default:
		}
		if time.Now().After(deadline) {
			return errors.New("stream draining; retry")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for slot := range cl.tails {
		cl.tails[slot] = append(cl.tails[slot], rec)
	}
	insts := cl.instancesLocked()
	cl.mu.Unlock()
	cl.closes.Add(1)
	for _, inst := range insts {
		if err := cl.pushInstance(inst, source, stream.NewWindowClose(stream.Time(tms), seq)); err != nil {
			return fmt.Errorf("slot %d: %w", inst.slot, err)
		}
	}
	return cl.s.enqueue(source, stream.NewWindowClose(stream.Time(tms), seq))
}

// handleCkpt takes a cluster checkpoint: snapshot the worker's own slot and
// every hosted instance at a quiesce barrier, and mark every replica tail's
// current length so the tails can be trimmed once the router confirms the
// snapshots are installed on the slots' replicas ("snap"). One ckpt_ack per
// hosted slot rides back, carrying the snapshot blob and the slot's
// consumed-close count.
func (cl *clusterState) handleCkpt(m Msg) ([]Msg, error) {
	if m.Ckpt == 0 {
		return nil, errors.New("cluster checkpoint needs a nonzero id")
	}
	cl.mu.Lock()
	if cl.epochEnded {
		cl.mu.Unlock()
		return nil, errors.New("epoch ended before checkpoint ran")
	}
	mk := map[int]int{}
	for slot, tail := range cl.tails {
		mk[slot] = len(tail)
	}
	cl.marks[m.Ckpt] = mk
	ep := cl.s.epoch()
	ownPE := cl.ownPE
	ownQuiet := cl.ownReleased
	insts := cl.instancesLocked()
	cl.mu.Unlock()
	if ep == nil {
		return nil, errors.New("no epoch running")
	}
	own := int(cl.shard.Load())
	var acks []Msg
	// A released own slot (migrated away) and a slotless joiner have no
	// live state for their home plan — and the slot's real host acks it, so
	// a stale ack here would double-count in the router's round. The plan
	// still drains through the barrier so the quiesce covers this worker.
	data, closes, err := snapshotPlan(ep.queue, ep.barriers, ep.runDone, ep.plan, ownPE)
	if err != nil {
		return nil, fmt.Errorf("slot %d: %w", own, err)
	}
	if own >= 0 && !ownQuiet {
		slot := own
		acks = append(acks, Msg{Kind: KindCkptAck, Shard: &slot, Ckpt: m.Ckpt, Closes: closes, Data: data})
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i].slot < insts[j].slot })
	for _, inst := range insts {
		data, closes, err := snapshotPlan(inst.queue, inst.barriers, inst.runDone, inst.plan, inst.pe)
		if err != nil {
			return nil, fmt.Errorf("slot %d: %w", inst.slot, err)
		}
		is := inst.slot
		acks = append(acks, Msg{Kind: KindCkptAck, Shard: &is, Ckpt: m.Ckpt, Closes: closes, Data: data})
	}
	return acks, nil
}

// snapshotPlan quiesces one live plan through its barrier channel and
// captures its checkpoint plus the part emitter's close ordinal — read
// inside the barrier, where the graph is idle, so the pair is consistent.
func snapshotPlan(q *Queue, barriers chan func(), runDone chan struct{}, plan *uop.Compiled, pe *partEmitter) (data []byte, closes uint64, err error) {
	deadline := time.Now().Add(10 * time.Second)
	for q.Depth() > 0 {
		select {
		case <-runDone:
			return nil, 0, errors.New("run ended before checkpoint ran")
		default:
		}
		if time.Now().After(deadline) {
			return nil, 0, errors.New("checkpoint timed out waiting for queue drain")
		}
		time.Sleep(200 * time.Microsecond)
	}
	errc := make(chan error, 1)
	fn := func() {
		var ferr error
		data, ferr = plan.Checkpoint()
		closes = pe.ordinal.Load()
		errc <- ferr
	}
	select {
	case barriers <- fn:
		select {
		case err := <-errc:
			return data, closes, err
		case <-runDone:
			return nil, 0, errors.New("run ended before checkpoint completed")
		}
	case <-runDone:
		return nil, 0, errors.New("run ended before checkpoint ran")
	case <-time.After(10 * time.Second):
		return nil, 0, errors.New("checkpoint request timed out")
	}
}

// handleSnap installs a snapshot for a slot this worker replicates, and
// trims the slot's replay tail to the suffix past the checkpoint mark: a
// later promote restores the snapshot and replays only that suffix.
func (cl *clusterState) handleSnap(m Msg) ([]Msg, error) {
	if m.Shard == nil {
		return nil, errors.New("snap carries no shard")
	}
	slot := *m.Shard
	cl.mu.Lock()
	cl.snaps[slot] = snapRec{id: m.Ckpt, closes: m.Closes, data: m.Data}
	if mk, ok := cl.marks[m.Ckpt][slot]; ok {
		if tail, ok := cl.tails[slot]; ok && mk <= len(tail) {
			cl.tails[slot] = tail[mk:]
			// Older/newer marks recorded lengths of the untrimmed tail.
			for _, mm := range cl.marks {
				if v, ok := mm[slot]; ok {
					mm[slot] = max(v-mk, 0)
				}
			}
		}
	}
	cl.mu.Unlock()
	return []Msg{{Kind: KindSnapAck, Shard: m.Shard, Ckpt: m.Ckpt}}, nil
}

// handlePromote fails a dead worker's slot over to this one: spawn an
// instance from the last installed snapshot (when the router names one we
// hold), replay the tail suffix, and suppress output for the window
// ordinals the router already merged. If the epoch has already ended, the
// instance drains inline so the "promoted" ack provably follows its last
// part line.
func (cl *clusterState) handlePromote(m Msg) ([]Msg, error) {
	if m.Shard == nil {
		return nil, errors.New("promote carries no shard")
	}
	slot := *m.Shard
	if slot == int(cl.shard.Load()) {
		return nil, fmt.Errorf("cannot promote own slot %d", slot)
	}
	cl.mu.Lock()
	if _, dup := cl.insts[slot]; dup {
		cl.mu.Unlock()
		return nil, fmt.Errorf("slot %d already promoted", slot)
	}
	rec, hasSnap := cl.snaps[slot]
	hasSnap = hasSnap && m.Ckpt != 0 && rec.id == m.Ckpt
	tail := cl.tails[slot]
	delete(cl.tails, slot) // the slot is live here now; no more tailing
	cl.hosted[slot] = true // later epochs spawn it fresh in beginEpoch
	ended := cl.epochEnded
	cl.mu.Unlock()

	inst, err := cl.spawnInstance(slot, rec, hasSnap, m.Closes)
	if err != nil {
		return nil, err
	}
	if m.Align {
		// Migration (not failover): there is no tail to replay, and the
		// instance — whatever state it restored — must stamp its next part
		// with the router's current merge ordinal.
		inst.pe.ordinal.Store(m.Closes)
	}
	for i, raw := range tail {
		if err := cl.replayLine(inst, raw); err != nil {
			return nil, fmt.Errorf("slot %d: replay tail line %d: %w", slot, i, err)
		}
	}
	if ended {
		inst.queue.Close()
		<-inst.runDone
	}
	cl.promotions.Add(1)
	return []Msg{{Kind: KindPromoted, Shard: m.Shard}}, nil
}

// spawnInstance starts a live plan instance for a hosted slot — restored
// from a snapshot when one is given — and registers it.
func (cl *clusterState) spawnInstance(slot int, rec snapRec, hasSnap bool, suppress uint64) (*instance, error) {
	plan := cl.s.cfg.NewPlan()
	if hasSnap {
		if err := plan.RestoreFrom(rec.data); err != nil {
			return nil, fmt.Errorf("slot %d: restore snapshot %d: %w", slot, rec.id, err)
		}
	}
	pe := &partEmitter{slot: slot}
	pe.suppress.Store(suppress)
	if hasSnap {
		pe.ordinal.Store(rec.closes)
	}
	plan.OnResult(func(t *stream.Tuple) { cl.emitPart(nil, pe, t) })
	inst := &instance{
		slot:     slot,
		plan:     plan,
		queue:    NewQueue(cl.s.cfg.QueueCap, Block),
		barriers: make(chan func()),
		runDone:  make(chan struct{}),
		pe:       pe,
	}
	go func() {
		defer close(inst.runDone)
		plan.RunLiveOpts(cl.s.ctx, inst.queue, stream.LiveOptions{
			Buffer:     cl.s.cfg.Buffer,
			FlushEvery: cl.s.cfg.FlushEvery,
			Barriers:   inst.barriers,
		})
	}()
	cl.mu.Lock()
	cl.insts[slot] = inst
	cl.mu.Unlock()
	return inst, nil
}

// replayLine feeds one tail record (a replica tuple or a close
// punctuation, in either wire encoding) into a promoted instance. Binary
// tail records are self-contained frames — no schema table survives the
// connection that carried them, so none is needed.
func (cl *clusterState) replayLine(inst *instance, raw []byte) error {
	if len(raw) > 0 && raw[0] == BwMagic {
		kind, payload, err := SplitFrame(raw)
		if err != nil {
			return err
		}
		switch kind {
		case BwTail:
			tm, err := DecodeTailTuple(payload)
			if err != nil {
				return err
			}
			u, err := tm.UTuple()
			if err != nil {
				return err
			}
			t := core.Wrap(u)
			t.Seq = tm.Seq
			return cl.pushInstance(inst, sourceName(tm.Source), t)
		case BwClose:
			cm, err := DecodeBwClose(payload)
			if err != nil {
				return err
			}
			return cl.pushInstance(inst, sourceName(cm.Source), stream.NewWindowClose(stream.Time(cm.T), cm.Seq))
		}
		return fmt.Errorf("unexpected frame kind 0x%02x in replay tail", kind)
	}
	var m Msg
	if err := json.Unmarshal(raw, &m); err != nil {
		return err
	}
	switch m.Kind {
	case KindTuple:
		u, err := ParseTuple(m)
		if err != nil {
			return err
		}
		t := core.Wrap(u)
		t.Seq = m.Seq
		return cl.pushInstance(inst, sourceOf(m), t)
	case KindClose:
		return cl.pushInstance(inst, sourceOf(m), stream.NewWindowClose(stream.Time(m.T), m.Seq))
	}
	return fmt.Errorf("unexpected kind %q in replay tail", m.Kind)
}

// ClusterStatsz is the /statsz cluster-worker section.
type ClusterStatsz struct {
	Joined   bool   `json:"joined"`
	Shard    int    `json:"shard"`
	Workers  int    `json:"workers"`
	Replicas int    `json:"replicas"`
	Version  uint64 `json:"version"`
	// Parts counts part lines shipped; Closes counts router punctuations
	// consumed; ReplicaLines counts dual-written tuples tailed.
	Parts        uint64 `json:"parts"`
	Closes       uint64 `json:"closes"`
	ReplicaLines uint64 `json:"replica_lines"`
	Promotions   uint64 `json:"promotions"`
	// Resets counts router-recovery rewinds applied; Releases counts slots
	// migrated away; OwnReleased marks a worker whose own slot lives
	// elsewhere now.
	Resets      uint64 `json:"resets,omitempty"`
	Releases    uint64 `json:"releases,omitempty"`
	OwnReleased bool   `json:"own_released,omitempty"`
	// Tails maps each replicated slot to its current replay-tail length.
	Tails map[int]int `json:"tails,omitempty"`
	// Hosted lists promoted slots currently running on this worker.
	Hosted []int `json:"hosted,omitempty"`
}

// statsz snapshots the cluster section.
func (cl *clusterState) statsz() *ClusterStatsz {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cs := &ClusterStatsz{
		Joined:       cl.joined,
		Shard:        int(cl.shard.Load()),
		Workers:      cl.workers,
		Replicas:     cl.replicas,
		Version:      cl.version,
		Parts:        cl.parts.Load(),
		Closes:       cl.closes.Load(),
		ReplicaLines: cl.replicaLines.Load(),
		Promotions:   cl.promotions.Load(),
		Resets:       cl.resets.Load(),
		Releases:     cl.releases.Load(),
		OwnReleased:  cl.ownReleased,
	}
	if len(cl.tails) > 0 {
		cs.Tails = make(map[int]int, len(cl.tails))
		for slot, tail := range cl.tails {
			cs.Tails[slot] = len(tail)
		}
	}
	for slot := range cl.insts {
		cs.Hosted = append(cs.Hosted, slot)
	}
	sort.Ints(cs.Hosted)
	return cs
}
