package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/uop"
)

// TestFileStore pins the Store contract the engine's durability rides on:
// atomic replace, ascending List that ignores temp and foreign files, and
// idempotent Delete.
func TestFileStore(t *testing.T) {
	st, err := NewFileStore(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(0); err == nil {
		t.Fatal("Get of a missing epoch did not fail")
	}
	if err := st.Put(0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(0, []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	if data, err := st.Get(0); err != nil || string(data) != "replaced" {
		t.Fatalf("Get(0) = %q, %v", data, err)
	}
	// Stray files a crashed Put or an operator could leave behind must not
	// surface as epochs.
	for _, junk := range []string{".epoch-1-zzz.tmp", "epoch-x.ckpt", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(st.Dir(), junk), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	epochs, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0] != 0 || epochs[1] != 2 {
		t.Fatalf("List = %v, want [0 2]", epochs)
	}
	if err := st.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(2); err != nil {
		t.Fatalf("second Delete of the same epoch: %v", err)
	}
	epochs, _ = st.List()
	if len(epochs) != 1 || epochs[0] != 0 {
		t.Fatalf("List after delete = %v, want [0]", epochs)
	}
}

// offlinePrefixLines runs a prefix of the wire stream through the unsharded
// synchronous plan WITHOUT closing it — the alerts an uninterrupted run has
// emitted by the time that prefix is fully processed. This is exactly what a
// quiesced live plan must have broadcast when a checkpoint taken after the
// same prefix completes.
func offlinePrefixLines(t testing.TB, msgs []Msg, cfg uop.Q1Config) []string {
	t.Helper()
	cfg.Shards = 0
	c := uop.BuildQ1(cfg).Compile()
	var lines []string
	for _, m := range msgs {
		u, err := ParseTuple(m)
		if err != nil {
			t.Fatalf("parse wire tuple: %v", err)
		}
		c.Push("locations", u)
		for _, tp := range c.Results() {
			am, err := AlertMsg(tp)
			if err != nil {
				t.Fatalf("encode alert: %v", err)
			}
			line, err := EncodeLine(am)
			if err != nil {
				t.Fatalf("encode line: %v", err)
			}
			lines = append(lines, string(line))
		}
	}
	return lines
}

// recvAlertsUntilDone drains a subscriber to the "done" line, returning the
// alert lines seen.
func recvAlertsUntilDone(t *testing.T, sub *testClient) []string {
	t.Helper()
	var got []string
	for {
		line := sub.recvLine(30 * time.Second)
		var m Msg
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad alert line %q: %v", line, err)
		}
		if m.Kind == KindDone {
			return got
		}
		got = append(got, line)
	}
}

// TestServerCrashRecoveryByteIdentical is the durable-state acceptance test:
// ingest a prefix, force a checkpoint, ingest more tuples whose effects die
// with the process, Crash() — then restart against the same directory,
// replay everything after the checkpoint, and require the combined alert
// stream (lines delivered before the checkpoint + lines from the recovered
// server) to match the uninterrupted offline run byte for byte, across
// window shapes and shard counts.
func TestServerCrashRecoveryByteIdentical(t *testing.T) {
	msgs := wireTrace(t, 30, 250)
	cases := []struct {
		name   string
		slide  stream.Time
		shards int
	}{
		{"tumbling/unsharded", 0, 0},
		{"tumbling/shards=2", 0, 2},
		{"sliding/shards=3", 2 * stream.Second, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testQ1Config(tc.shards)
			cfg.SlideMS = tc.slide
			ref := offlineAlertLines(t, msgs, cfg)
			cut := len(msgs) * 2 / 3
			crashAt := cut + len(msgs)/6
			preRef := offlinePrefixLines(t, msgs[:cut], cfg)
			if len(preRef) == 0 || len(preRef) >= len(ref) {
				t.Fatalf("bad split: %d alerts before the cut, %d total", len(preRef), len(ref))
			}

			dir := t.TempDir()
			store1, err := NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			s1 := newTestServer(t, Config{
				NewPlan:    Q1Plan(cfg),
				FlushEvery: 20 * time.Millisecond,
				Store:      store1,
			})
			sub1 := dialServer(t, s1)
			sub1.send(Msg{Kind: KindSub})
			if m := sub1.recv(5 * time.Second); m.Kind != KindOK {
				t.Fatalf("subscribe: %+v", m)
			}
			ing1 := dialServer(t, s1)
			for _, m := range msgs[:cut] {
				ing1.send(m)
			}
			// "ckpt" waits for the queue to drain and the graph to quiesce, so
			// the persisted state provably covers exactly msgs[:cut].
			ing1.send(Msg{Kind: KindCkpt})
			if m := ing1.recv(30 * time.Second); m.Kind != KindOK {
				t.Fatalf("ckpt: %+v", m)
			}
			st := s1.Stats()
			if st.Checkpoint == nil || st.Checkpoint.Count != 1 || st.Checkpoint.LastBytes == 0 {
				t.Fatalf("checkpoint statsz after ckpt: %+v", st.Checkpoint)
			}
			if len(st.Checkpoint.EpochsOnDisk) != 1 {
				t.Fatalf("epochs on disk: %v", st.Checkpoint.EpochsOnDisk)
			}
			// Tuples the crash will destroy: processed by s1, never persisted.
			for _, m := range msgs[cut:crashAt] {
				ing1.send(m)
			}
			// The subscriber's channel is FIFO, so the first len(preRef) lines
			// are exactly the alerts from before the checkpoint.
			var pre []string
			for len(pre) < len(preRef) {
				pre = append(pre, sub1.recvLine(10*time.Second))
			}
			if strings.Join(pre, "") != strings.Join(preRef, "") {
				t.Fatalf("pre-checkpoint alerts diverge:\nref:\n%s\ngot:\n%s",
					strings.Join(preRef, ""), strings.Join(pre, ""))
			}
			s1.Crash()

			store2, err := NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			s2 := newTestServer(t, Config{
				NewPlan:    Q1Plan(cfg),
				FlushEvery: 20 * time.Millisecond,
				Store:      store2,
			})
			sub2 := dialServer(t, s2)
			sub2.send(Msg{Kind: KindSub})
			if m := sub2.recv(5 * time.Second); m.Kind != KindOK {
				t.Fatalf("subscribe after restart: %+v", m)
			}
			ing2 := dialServer(t, s2)
			for _, m := range msgs[cut:] {
				ing2.send(m)
			}
			ing2.send(Msg{Kind: KindEnd})
			if m := ing2.recv(30 * time.Second); m.Kind != KindOK {
				t.Fatalf("end: %+v", m)
			}
			post := recvAlertsUntilDone(t, sub2)

			got := strings.Join(pre, "") + strings.Join(post, "")
			want := strings.Join(ref, "")
			if got != want {
				t.Fatalf("recovered alert stream diverges from uninterrupted run:\nref (%d):\n%s\ngot (%d+%d):\n%s",
					len(ref), want, len(pre), len(post), got)
			}

			st2 := s2.Stats()
			if len(st2.Epochs) == 0 || !st2.Epochs[0].Recovered {
				t.Fatalf("restarted server did not report a recovered epoch: %+v", st2.Epochs)
			}
			// A cleanly completed stream deletes its checkpoint — recovery must
			// never resurrect a finished epoch. The delete runs just after the
			// "done" broadcast, so poll briefly.
			deadline := time.Now().Add(5 * time.Second)
			for {
				epochs, err := store2.List()
				if err != nil {
					t.Fatal(err)
				}
				if len(epochs) == 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("checkpoint not deleted after clean end: %v", epochs)
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
}

// TestServerRecoverCorruptCheckpointStartsFresh: an unreadable checkpoint
// must not take the server down or be silently half-applied — startup falls
// back to a fresh epoch numbered past the bad one, leaves the file on disk
// for diagnosis, and counts the error.
func TestServerRecoverCorruptCheckpointStartsFresh(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(3, []byte("not a checkpoint")); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{
		NewPlan:    Q1Plan(testQ1Config(2)),
		FlushEvery: 20 * time.Millisecond,
		Store:      store,
	})
	sub := dialServer(t, s)
	sub.send(Msg{Kind: KindSub})
	if m := sub.recv(5 * time.Second); m.Kind != KindOK {
		t.Fatalf("subscribe: %+v", m)
	}
	st := s.Stats()
	if st.Epoch != 4 {
		t.Fatalf("epoch after corrupt recovery = %d, want 4 (past the bad checkpoint)", st.Epoch)
	}
	if st.Checkpoint == nil || st.Checkpoint.Errors == 0 {
		t.Fatalf("corrupt checkpoint not counted: %+v", st.Checkpoint)
	}
	// The server still serves: a replayed stream completes normally.
	ing := dialServer(t, s)
	ing.send(locMsgAt(1000, 1, 3, 4, 150))
	ing.send(Msg{Kind: KindEnd})
	if m := ing.recv(10 * time.Second); m.Kind != KindOK {
		t.Fatalf("end: %+v", m)
	}
	recvAlertsUntilDone(t, sub)
	// The bad file stays for diagnosis.
	if _, err := store.Get(3); err != nil {
		t.Fatalf("corrupt checkpoint was removed: %v", err)
	}
}

// TestServerGracefulCloseWritesFinalCheckpoint: Close drains the epoch and
// persists a final checkpoint before open windows flush, so a restart after
// a graceful stop resumes rather than forgetting the open windows. Crash,
// by contrast, must write nothing.
func TestServerGracefulCloseWritesFinalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{
		NewPlan:    Q1Plan(testQ1Config(0)),
		FlushEvery: 20 * time.Millisecond,
		Store:      store,
	})
	ing := dialServer(t, s)
	ing.send(locMsgAt(1000, 1, 3, 4, 150))
	ing.send(Msg{Kind: KindCkpt}) // force the tuple through before closing
	if m := ing.recv(10 * time.Second); m.Kind != KindOK {
		t.Fatalf("ckpt: %+v", m)
	}
	s.Close()
	epochs, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 1 || epochs[0] != 0 {
		t.Fatalf("epochs on disk after graceful close = %v, want [0]", epochs)
	}
	if s.Stats().Checkpoint.Count < 2 {
		t.Fatalf("graceful close did not write a final checkpoint: %+v", s.Stats().Checkpoint)
	}

	// Crash leaves only what was already on disk.
	dir2 := t.TempDir()
	store2, err := NewFileStore(dir2)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, Config{
		NewPlan:    Q1Plan(testQ1Config(0)),
		FlushEvery: 20 * time.Millisecond,
		Store:      store2,
	})
	ing2 := dialServer(t, s2)
	ing2.send(locMsgAt(1000, 1, 3, 4, 150))
	s2.Crash()
	epochs2, err := store2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs2) != 0 {
		t.Fatalf("crash wrote a checkpoint: %v", epochs2)
	}
}
